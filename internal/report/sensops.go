// Sensitivity-ops report: the watcher's per-slice rolling NLP series plus
// the current alert set, rendered as JSON (machines) or a single
// self-contained HTML page (humans). The types here are plain data — the
// watcher populates them — so this package stays free of the live engine
// and the wire contract.
package report

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"math"
	"strings"
)

// AlertRow is one alert as the sensitivity report shows it.
type AlertRow struct {
	ID        string  `json:"id"`
	Type      string  `json:"type"`
	Slice     string  `json:"slice"`
	Severity  string  `json:"severity"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// SensSlice is one watched slice's sensitivity series.
type SensSlice struct {
	// Slice is the canonical slice key.
	Slice string `json:"slice"`
	// Records is the number of stored records behind the series.
	Records int `json:"records"`
	// Version is the slice's ingest version the series reflects.
	Version uint64 `json:"version"`
	// Probes are the tracked probe latencies (ms).
	Probes []float64 `json:"probes_ms"`
	// WindowStartHours are window start times in hours since the stream
	// origin; NLP[i][j] is the NLP at Probes[j] for window i (NaN renders
	// as null in JSON and a gap in charts).
	WindowStartHours []float64   `json:"window_start_hours"`
	NLP              [][]float64 `json:"nlp"`
	// WindowRecords[i] is the record count of window i.
	WindowRecords []int `json:"window_records"`
	// Skipped counts windows dropped for thin data.
	Skipped int `json:"skipped_windows"`
}

// SensOpsReport is the full sensitivity-ops report.
type SensOpsReport struct {
	// Tick is the watcher tick the report reflects.
	Tick uint64 `json:"tick"`
	// Slices holds one entry per watched slice that has produced a series.
	Slices []SensSlice `json:"slices"`
	// Alerts is the retained alert set, firing first.
	Alerts []AlertRow `json:"alerts"`
}

// jsonSafe maps NaN/Inf (invalid in JSON) to nil.
func jsonSafe(v float64) any {
	if !finite(v) {
		return nil
	}
	return v
}

// MarshalJSON renders the report with NaN NLP values as null, so the
// artifact is always valid JSON.
func (r *SensOpsReport) MarshalJSON() ([]byte, error) {
	type sliceJSON struct {
		Slice            string    `json:"slice"`
		Records          int       `json:"records"`
		Version          uint64    `json:"version"`
		Probes           []float64 `json:"probes_ms"`
		WindowStartHours []float64 `json:"window_start_hours"`
		NLP              [][]any   `json:"nlp"`
		WindowRecords    []int     `json:"window_records"`
		Skipped          int       `json:"skipped_windows"`
	}
	out := struct {
		Tick   uint64      `json:"tick"`
		Slices []sliceJSON `json:"slices"`
		Alerts []AlertRow  `json:"alerts"`
	}{Tick: r.Tick, Slices: make([]sliceJSON, len(r.Slices)), Alerts: r.Alerts}
	for i, s := range r.Slices {
		nlp := make([][]any, len(s.NLP))
		for w, row := range s.NLP {
			nlp[w] = make([]any, len(row))
			for j, v := range row {
				nlp[w][j] = jsonSafe(v)
			}
		}
		out.Slices[i] = sliceJSON{
			Slice: s.Slice, Records: s.Records, Version: s.Version,
			Probes: s.Probes, WindowStartHours: s.WindowStartHours,
			NLP: nlp, WindowRecords: s.WindowRecords, Skipped: s.Skipped,
		}
	}
	return json.Marshal(out)
}

// chart renders the slice's per-probe NLP series as an ASCII line chart,
// reused verbatim inside the HTML page (in a <pre>) and by RenderText.
func (s *SensSlice) chart() string {
	var series []Series
	for j, probe := range s.Probes {
		y := make([]float64, len(s.NLP))
		for i, row := range s.NLP {
			y[i] = row[j]
		}
		series = append(series, Series{Name: fmt.Sprintf("NLP@%gms", probe), X: s.WindowStartHours, Y: y})
	}
	var b strings.Builder
	c := LineChart{XLabel: "window start (hours)", YLabel: "NLP", Width: 72, Height: 14}
	if err := c.Render(&b, series...); err != nil {
		return "(no estimable windows)\n"
	}
	return b.String()
}

// latest returns the newest non-NaN NLP value at probe index j.
func (s *SensSlice) latest(j int) float64 {
	for i := len(s.NLP) - 1; i >= 0; i-- {
		if v := s.NLP[i][j]; !math.IsNaN(v) {
			return v
		}
	}
	return math.NaN()
}

// RenderText writes the report as terminal-friendly plain text.
func (r *SensOpsReport) RenderText(w io.Writer) error {
	fmt.Fprintf(w, "sensitivity ops report (tick %d)\n\n", r.Tick)
	fmt.Fprintf(w, "alerts: %d\n", len(r.Alerts))
	for _, a := range r.Alerts {
		fmt.Fprintf(w, "  [%s/%s] %s: %s\n", a.State, a.Severity, a.ID, a.Message)
	}
	for i := range r.Slices {
		s := &r.Slices[i]
		fmt.Fprintf(w, "\nslice %s (%d records, version %d, %d windows, %d skipped)\n",
			s.Slice, s.Records, s.Version, len(s.NLP), s.Skipped)
		if _, err := io.WriteString(w, s.chart()); err != nil {
			return err
		}
	}
	return nil
}

// sensopsTmpl is the single-page HTML report. Styling is inline so the
// artifact is self-contained (openable from disk, attachable to an
// incident ticket).
var sensopsTmpl = template.Must(template.New("sensops").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>AutoSens sensitivity ops</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: left; font-size: 0.9em; }
th { background: #f0f0f0; }
pre { background: #f7f7f7; padding: 0.8em; overflow-x: auto; font-size: 0.8em; }
.firing { color: #b00020; font-weight: bold; }
.pending { color: #b36b00; }
.resolved { color: #4a4a4a; }
.critical { background: #ffe5e5; }
.muted { color: #777; }
</style></head><body>
<h1>AutoSens sensitivity ops &mdash; tick {{.Tick}}</h1>
<h2>Alerts ({{len .Alerts}})</h2>
{{if .Alerts}}<table>
<tr><th>state</th><th>severity</th><th>type</th><th>slice</th><th>value</th><th>threshold</th><th>message</th></tr>
{{range .Alerts}}<tr class="{{.Severity}}"><td class="{{.State}}">{{.State}}</td><td>{{.Severity}}</td><td>{{.Type}}</td><td>{{.Slice}}</td><td>{{printf "%.3f" .Value}}</td><td>{{printf "%.3f" .Threshold}}</td><td>{{.Message}}</td></tr>
{{end}}</table>{{else}}<p class="muted">No alerts.</p>{{end}}
{{range .SliceViews}}
<h2>Slice {{.Slice}}</h2>
<p class="muted">{{.Records}} records &middot; version {{.Version}} &middot; {{.Windows}} windows ({{.Skipped}} skipped)</p>
<table><tr><th>probe (ms)</th><th>latest NLP</th></tr>
{{range .Latest}}<tr><td>{{.Probe}}</td><td>{{.NLP}}</td></tr>{{end}}</table>
<pre>{{.Chart}}</pre>
{{end}}
</body></html>
`))

// RenderHTML writes the report as one self-contained HTML page.
func (r *SensOpsReport) RenderHTML(w io.Writer) error {
	type latestRow struct{ Probe, NLP string }
	type sliceView struct {
		Slice            string
		Records          int
		Version          uint64
		Windows, Skipped int
		Latest           []latestRow
		Chart            string
	}
	views := make([]sliceView, 0, len(r.Slices))
	for i := range r.Slices {
		s := &r.Slices[i]
		v := sliceView{
			Slice: s.Slice, Records: s.Records, Version: s.Version,
			Windows: len(s.NLP), Skipped: s.Skipped, Chart: s.chart(),
		}
		for j, probe := range s.Probes {
			nlp := "n/a"
			if x := s.latest(j); !math.IsNaN(x) {
				nlp = fmt.Sprintf("%.3f", x)
			}
			v.Latest = append(v.Latest, latestRow{Probe: fmt.Sprintf("%g", probe), NLP: nlp})
		}
		views = append(views, v)
	}
	return sensopsTmpl.Execute(w, struct {
		Tick       uint64
		Alerts     []AlertRow
		SliceViews []sliceView
	}{Tick: r.Tick, Alerts: r.Alerts, SliceViews: views})
}
