package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	var buf bytes.Buffer
	c := LineChart{Title: "test", Width: 40, Height: 10, XLabel: "ms", YLabel: "nlp"}
	s := Series{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	if err := c.Render(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "* a") {
		t.Fatalf("missing title or legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no points plotted")
	}
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Fatalf("chart too short: %d lines", lines)
	}
}

func TestLineChartMultipleSeriesDistinctGlyphs(t *testing.T) {
	var buf bytes.Buffer
	c := LineChart{Width: 40, Height: 8}
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}}
	if err := c.Render(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("expected two glyphs:\n%s", out)
	}
}

func TestLineChartSkipsNaN(t *testing.T) {
	var buf bytes.Buffer
	c := LineChart{Width: 20, Height: 5}
	s := Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 2}}
	if err := c.Render(&buf, s); err != nil {
		t.Fatal(err)
	}
}

func TestLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	c := LineChart{}
	if err := c.Render(&buf); err == nil {
		t.Fatal("no series accepted")
	}
	bad := Series{Name: "x", X: []float64{1}, Y: []float64{1, 2}}
	if err := c.Render(&buf, bad); err == nil {
		t.Fatal("ragged series accepted")
	}
	allNaN := Series{Name: "n", X: []float64{1}, Y: []float64{math.NaN()}}
	if err := c.Render(&buf, allNaN); err == nil {
		t.Fatal("all-NaN series accepted")
	}
}

func TestLineChartFixedYRange(t *testing.T) {
	var buf bytes.Buffer
	c := LineChart{Width: 30, Height: 6, YMin: 0, YMax: 2}
	s := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0.5, 1.5}}
	if err := c.Render(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2") {
		t.Fatal("fixed ymax not labelled")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	b := BarChart{Title: "ratios", Width: 20}
	err := b.Render(&buf, []string{"actual", "shuffled", "sorted"}, []float64{0.3, 1.0, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ratios") || !strings.Contains(out, "shuffled |####################") {
		t.Fatalf("bar chart wrong:\n%s", out)
	}
}

func TestBarChartUndefined(t *testing.T) {
	var buf bytes.Buffer
	if err := (BarChart{}).Render(&buf, []string{"a"}, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "undefined") {
		t.Fatal("NaN bar not marked undefined")
	}
}

func TestBarChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (BarChart{}).Render(&buf, []string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
	if err := (BarChart{}).Render(&buf, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	tab := Table{Title: "t1", Headers: []string{"slot", "count"}}
	err := tab.Render(&buf, [][]string{{"day", "90"}, {"night", "26"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| slot  | count |") {
		t.Fatalf("misaligned table:\n%s", out)
	}
	if !strings.Contains(out, "| night | 26    |") {
		t.Fatalf("row missing:\n%s", out)
	}
}

func TestTableErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Table{}).Render(&buf, nil); err == nil {
		t.Fatal("headerless table accepted")
	}
	tab := Table{Headers: []string{"a", "b"}}
	if err := tab.Render(&buf, [][]string{{"only one"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"x", "y"}, []float64{1, 2}, []float64{3, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,3\n2,\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("mismatch accepted")
	}
	if err := CSV(&buf, nil); err == nil {
		t.Fatal("no columns accepted")
	}
	if err := CSV(&buf, []string{"x", "y"}, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestDownsample(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i * 2)
	}
	dx, dy := Downsample(x, y, 10)
	if len(dx) > 11 || len(dx) != len(dy) {
		t.Fatalf("downsampled to %d points", len(dx))
	}
	if dx[len(dx)-1] != 99 {
		t.Fatal("last point not kept")
	}
	// Short series pass through.
	sx, sy := Downsample(x[:5], y[:5], 10)
	if len(sx) != 5 || len(sy) != 5 {
		t.Fatal("short series altered")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}
