package telemetry

import (
	"flag"
	"testing"
)

func TestFormatFlagParsesAndRestricts(t *testing.T) {
	ff := NewFormatFlag(JSONL)
	if ff.Format() != JSONL || ff.String() != "jsonl" {
		t.Fatalf("default = %v / %q", ff.Format(), ff.String())
	}
	for name, want := range map[string]Format{"jsonl": JSONL, "json": JSONL, "csv": CSV, "tbin": TBIN} {
		if err := ff.Set(name); err != nil {
			t.Fatalf("Set(%q): %v", name, err)
		}
		if ff.Format() != want {
			t.Fatalf("Set(%q) selected %v, want %v", name, ff.Format(), want)
		}
	}
	if err := ff.Set("protobuf"); err == nil {
		t.Fatal("unknown format accepted")
	}

	wire := NewFormatFlag(JSONL, JSONL, TBIN)
	if err := wire.Set("csv"); err == nil {
		t.Fatal("restricted flag accepted csv")
	}
	if got := wire.Choices(); got != "jsonl, tbin" {
		t.Fatalf("Choices() = %q", got)
	}
	if err := wire.Set("tbin"); err != nil || wire.Format() != TBIN {
		t.Fatalf("Set(tbin) = %v, format %v", err, wire.Format())
	}
}

func TestFormatFlagWithFlagSet(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ff := NewFormatFlag(JSONL)
	fs.Var(ff, "format", "telemetry format: "+ff.Choices())
	if err := fs.Parse([]string{"-format", "tbin"}); err != nil {
		t.Fatal(err)
	}
	if ff.Format() != TBIN {
		t.Fatalf("parsed format %v, want TBIN", ff.Format())
	}
	var nilFF *FormatFlag
	if nilFF.String() != "" {
		t.Fatal("nil FormatFlag String() not empty")
	}
}
