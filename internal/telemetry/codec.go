package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"autosens/internal/timeutil"
)

// Format selects a wire/file encoding for telemetry records.
type Format int

// Supported formats.
const (
	// JSONL encodes one JSON object per line; it is the default log
	// format, mirroring structured web-access logs. Encoding and decoding
	// run on a hand-rolled allocation-free fast path that is
	// byte-compatible with encoding/json (the decoder falls back to the
	// stdlib on shapes it does not recognize).
	JSONL Format = iota
	// CSV encodes a header row plus one comma-separated row per record.
	CSV
	// TBIN is the compact binary format: block-framed, varint-delta
	// times, dictionary-coded enums. See tbin.go for the layout. It is
	// typically >5x smaller than JSONL and decodes without per-record
	// allocations.
	TBIN
)

// String implements fmt.Stringer with the names ParseFormat accepts.
func (f Format) String() string {
	switch f {
	case JSONL:
		return "jsonl"
	case CSV:
		return "csv"
	case TBIN:
		return "tbin"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat converts a -format flag value into a Format. "json" is an
// alias for jsonl, matching the wire encoding's name.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl", "json":
		return JSONL, nil
	case "csv":
		return CSV, nil
	case "tbin":
		return TBIN, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown format %q (want jsonl, csv or tbin)", s)
	}
}

// csvHeader is the column layout of the CSV format.
var csvHeader = []string{"time_ms", "action", "latency_ms", "user_id", "user_type", "tz_offset_ms", "failed"}

// Writer streams records to an underlying io.Writer in a fixed format.
// Close (or at least Flush) must be called to drain buffers; Close also
// returns the Writer's pooled scratch buffers.
type Writer struct {
	format  Format
	buf     *bufio.Writer
	csvw    *csv.Writer
	scratch []byte // pooled JSONL line buffer
	tbin    *tbinWriter
	wrote   bool
	count   int
}

// NewWriter returns a Writer emitting the given format to w.
func NewWriter(w io.Writer, format Format) *Writer {
	tw := &Writer{format: format, buf: bufio.NewWriterSize(w, 1<<16)}
	switch format {
	case CSV:
		tw.csvw = csv.NewWriter(tw.buf)
	case TBIN:
		tw.tbin = newTBINWriter()
	default:
		tw.scratch = getBuf()
	}
	return tw
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	switch w.format {
	case JSONL:
		line, err := AppendRecordJSON(w.scratch[:0], r)
		if err != nil {
			return err
		}
		w.scratch = append(line, '\n')
		if _, err := w.buf.Write(w.scratch); err != nil {
			return err
		}
	case CSV:
		if !w.wrote {
			if err := w.csvw.Write(csvHeader); err != nil {
				return err
			}
		}
		row := []string{
			strconv.FormatInt(int64(r.Time), 10),
			r.Action.String(),
			strconv.FormatFloat(r.LatencyMS, 'g', -1, 64),
			strconv.FormatUint(r.UserID, 10),
			r.UserType.String(),
			strconv.FormatInt(int64(r.TZOffset), 10),
			strconv.FormatBool(r.Failed),
		}
		if err := w.csvw.Write(row); err != nil {
			return err
		}
	case TBIN:
		if err := w.tbin.write(r, w.buf); err != nil {
			return err
		}
	default:
		return fmt.Errorf("telemetry: unknown format %d", w.format)
	}
	w.wrote = true
	w.count++
	observeEncoded()
	return nil
}

// WriteAll appends every record in rs.
func (w *Writer) WriteAll(rs []Record) error {
	for _, r := range rs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.count }

// Flush drains buffered output to the underlying writer. For TBIN this
// frames and emits the partially filled block (and the stream header, so
// an empty flushed stream is still a valid TBIN file).
func (w *Writer) Flush() error {
	if w.csvw != nil {
		w.csvw.Flush()
		if err := w.csvw.Error(); err != nil {
			return err
		}
	}
	if w.tbin != nil {
		if err := w.tbin.flushBlock(w.buf); err != nil {
			return err
		}
	}
	return w.buf.Flush()
}

// Close flushes and returns the Writer's pooled buffers. The Writer must
// not be used after Close.
func (w *Writer) Close() error {
	err := w.Flush()
	if w.scratch != nil {
		putBuf(w.scratch)
		w.scratch = nil
	}
	if w.tbin != nil {
		w.tbin.release()
		w.tbin = nil
	}
	return err
}

// Reader streams records from an underlying io.Reader. JSONL input is
// decoded on an allocation-free fast path, falling back to encoding/json
// line by line for shapes the fast path does not recognize.
type Reader struct {
	format  Format
	scan    *bufio.Scanner
	scanBuf []byte // pooled initial scanner buffer
	csvr    *csv.Reader
	tbin    *tbinReader
	header  bool
	line    int
}

// NewReader returns a Reader decoding the given format from r.
func NewReader(r io.Reader, format Format) *Reader {
	tr := &Reader{format: format}
	switch format {
	case CSV:
		tr.csvr = csv.NewReader(r)
		tr.csvr.FieldsPerRecord = len(csvHeader)
	case TBIN:
		br := bufio.NewReaderSize(r, 1<<16)
		tr.tbin = newTBINReader(br, br)
	default:
		tr.scan = bufio.NewScanner(r)
		tr.scanBuf = getBuf()
		tr.scan.Buffer(tr.scanBuf[:0], 1<<20)
	}
	return tr
}

// Read returns the next record, or io.EOF when the stream ends.
func (r *Reader) Read() (Record, error) {
	switch r.format {
	case JSONL:
		for {
			if !r.scan.Scan() {
				if err := r.scan.Err(); err != nil {
					return Record{}, err
				}
				return Record{}, io.EOF
			}
			r.line++
			line := r.scan.Bytes()
			if len(line) == 0 {
				continue
			}
			rec, ok := parseRecordFast(line)
			if !ok {
				var err error
				// The fallback lives in its own function so taking &rec for
				// json.Unmarshal there does not force this rec — the one the
				// fast path fills on every call — onto the heap.
				if rec, err = unmarshalRecordSlow(line); err != nil {
					return Record{}, fmt.Errorf("telemetry: line %d: %w", r.line, err)
				}
			}
			if err := rec.Validate(); err != nil {
				return Record{}, fmt.Errorf("telemetry: line %d: %w", r.line, err)
			}
			observeDecoded()
			return rec, nil
		}
	case CSV:
		for {
			row, err := r.csvr.Read()
			if err != nil {
				return Record{}, err
			}
			r.line++
			if !r.header {
				r.header = true
				if row[0] == csvHeader[0] {
					continue
				}
			}
			rec, err := parseCSVRow(row)
			if err != nil {
				return Record{}, fmt.Errorf("telemetry: line %d: %w", r.line, err)
			}
			observeDecoded()
			return rec, nil
		}
	case TBIN:
		rec, err := r.tbin.read()
		if err != nil {
			return Record{}, err
		}
		r.line++
		if err := rec.Validate(); err != nil {
			return Record{}, fmt.Errorf("telemetry: tbin record %d: %w", r.line, err)
		}
		observeDecoded()
		return rec, nil
	default:
		return Record{}, fmt.Errorf("telemetry: unknown format %d", r.format)
	}
}

// SkipBlock discards the next TBIN block without decoding it, returning
// the number of records skipped; io.EOF marks the end of the stream. It
// is the primitive for samplers and parallel readers that shard a file by
// block. Only valid for TBIN readers positioned on a block boundary.
func (r *Reader) SkipBlock() (int, error) {
	if r.format != TBIN {
		return 0, fmt.Errorf("telemetry: SkipBlock requires TBIN input, have %v", r.format)
	}
	n, err := r.tbin.skipBlock()
	r.line += n
	return n, err
}

// unmarshalRecordSlow is the encoding/json fallback for JSONL lines the
// fast path declines.
//
//go:noinline
func unmarshalRecordSlow(line []byte) (Record, error) {
	observeJSONLFallback()
	var rec Record
	err := json.Unmarshal(line, &rec)
	return rec, err
}

func parseCSVRow(row []string) (Record, error) {
	var rec Record
	t, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad time: %w", err)
	}
	rec.Time = timeutil.Millis(t)
	if rec.Action, err = ParseActionType(row[1]); err != nil {
		return rec, err
	}
	if rec.LatencyMS, err = strconv.ParseFloat(row[2], 64); err != nil {
		return rec, fmt.Errorf("bad latency: %w", err)
	}
	if rec.UserID, err = strconv.ParseUint(row[3], 10, 64); err != nil {
		return rec, fmt.Errorf("bad user id: %w", err)
	}
	if rec.UserType, err = ParseUserType(row[4]); err != nil {
		return rec, err
	}
	tz, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad tz offset: %w", err)
	}
	rec.TZOffset = timeutil.Millis(tz)
	if rec.Failed, err = strconv.ParseBool(row[6]); err != nil {
		return rec, fmt.Errorf("bad failed flag: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return rec, err
	}
	return rec, nil
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Close returns the Reader's pooled buffers. The Reader must not be used
// after Close.
func (r *Reader) Close() {
	if r.scanBuf != nil {
		putBuf(r.scanBuf)
		r.scanBuf = nil
	}
	if r.tbin != nil {
		r.tbin.release()
		r.tbin = nil
	}
}
