package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"autosens/internal/timeutil"
)

// Format selects a wire/file encoding for telemetry records.
type Format int

// Supported formats.
const (
	// JSONL encodes one JSON object per line; it is the default log
	// format, mirroring structured web-access logs.
	JSONL Format = iota
	// CSV encodes a header row plus one comma-separated row per record.
	CSV
)

// csvHeader is the column layout of the CSV format.
var csvHeader = []string{"time_ms", "action", "latency_ms", "user_id", "user_type", "tz_offset_ms", "failed"}

// Writer streams records to an underlying io.Writer in a fixed format.
// Close (or at least Flush) must be called to drain buffers.
type Writer struct {
	format Format
	buf    *bufio.Writer
	csvw   *csv.Writer
	wrote  bool
	count  int
}

// NewWriter returns a Writer emitting the given format to w.
func NewWriter(w io.Writer, format Format) *Writer {
	tw := &Writer{format: format, buf: bufio.NewWriterSize(w, 1<<16)}
	if format == CSV {
		tw.csvw = csv.NewWriter(tw.buf)
	}
	return tw
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	switch w.format {
	case JSONL:
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.buf.Write(b); err != nil {
			return err
		}
		if err := w.buf.WriteByte('\n'); err != nil {
			return err
		}
	case CSV:
		if !w.wrote {
			if err := w.csvw.Write(csvHeader); err != nil {
				return err
			}
		}
		row := []string{
			strconv.FormatInt(int64(r.Time), 10),
			r.Action.String(),
			strconv.FormatFloat(r.LatencyMS, 'g', -1, 64),
			strconv.FormatUint(r.UserID, 10),
			r.UserType.String(),
			strconv.FormatInt(int64(r.TZOffset), 10),
			strconv.FormatBool(r.Failed),
		}
		if err := w.csvw.Write(row); err != nil {
			return err
		}
	default:
		return fmt.Errorf("telemetry: unknown format %d", w.format)
	}
	w.wrote = true
	w.count++
	return nil
}

// WriteAll appends every record in rs.
func (w *Writer) WriteAll(rs []Record) error {
	for _, r := range rs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.count }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error {
	if w.csvw != nil {
		w.csvw.Flush()
		if err := w.csvw.Error(); err != nil {
			return err
		}
	}
	return w.buf.Flush()
}

// Reader streams records from an underlying io.Reader.
type Reader struct {
	format Format
	scan   *bufio.Scanner
	csvr   *csv.Reader
	header bool
	line   int
}

// NewReader returns a Reader decoding the given format from r.
func NewReader(r io.Reader, format Format) *Reader {
	tr := &Reader{format: format}
	switch format {
	case CSV:
		tr.csvr = csv.NewReader(r)
		tr.csvr.FieldsPerRecord = len(csvHeader)
	default:
		tr.scan = bufio.NewScanner(r)
		tr.scan.Buffer(make([]byte, 0, 1<<16), 1<<20)
	}
	return tr
}

// Read returns the next record, or io.EOF when the stream ends.
func (r *Reader) Read() (Record, error) {
	switch r.format {
	case JSONL:
		for {
			if !r.scan.Scan() {
				if err := r.scan.Err(); err != nil {
					return Record{}, err
				}
				return Record{}, io.EOF
			}
			r.line++
			line := r.scan.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				return Record{}, fmt.Errorf("telemetry: line %d: %w", r.line, err)
			}
			if err := rec.Validate(); err != nil {
				return Record{}, fmt.Errorf("telemetry: line %d: %w", r.line, err)
			}
			return rec, nil
		}
	case CSV:
		for {
			row, err := r.csvr.Read()
			if err != nil {
				return Record{}, err
			}
			r.line++
			if !r.header {
				r.header = true
				if row[0] == csvHeader[0] {
					continue
				}
			}
			rec, err := parseCSVRow(row)
			if err != nil {
				return Record{}, fmt.Errorf("telemetry: line %d: %w", r.line, err)
			}
			return rec, nil
		}
	default:
		return Record{}, fmt.Errorf("telemetry: unknown format %d", r.format)
	}
}

func parseCSVRow(row []string) (Record, error) {
	var rec Record
	t, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad time: %w", err)
	}
	rec.Time = timeutil.Millis(t)
	if rec.Action, err = ParseActionType(row[1]); err != nil {
		return rec, err
	}
	if rec.LatencyMS, err = strconv.ParseFloat(row[2], 64); err != nil {
		return rec, fmt.Errorf("bad latency: %w", err)
	}
	if rec.UserID, err = strconv.ParseUint(row[3], 10, 64); err != nil {
		return rec, fmt.Errorf("bad user id: %w", err)
	}
	if rec.UserType, err = ParseUserType(row[4]); err != nil {
		return rec, err
	}
	tz, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad tz offset: %w", err)
	}
	rec.TZOffset = timeutil.Millis(tz)
	if rec.Failed, err = strconv.ParseBool(row[6]); err != nil {
		return rec, fmt.Errorf("bad failed flag: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return rec, err
	}
	return rec, nil
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
