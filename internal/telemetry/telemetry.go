// Package telemetry defines the minimal telemetry AutoSens consumes:
// tuples (T, A, L, M) — timestamp, action type, end-to-end latency, and
// optional user metadata (Section 2.1 of the paper) — together with codecs
// (JSONL, CSV), filters, and the per-user median-latency quartile grouping
// used by the conditioning analysis (Section 3.4).
package telemetry

import (
	"fmt"
	"sort"

	"autosens/internal/stats"
	"autosens/internal/timeutil"
)

// ActionType enumerates the four OWA user actions the paper analyzes.
type ActionType int

// Action types from Section 3.2.
const (
	SelectMail ActionType = iota
	SwitchFolder
	Search
	ComposeSend
	numActionTypes
)

// NumActionTypes is the number of distinct action types.
const NumActionTypes = int(numActionTypes)

// ActionTypes lists all action types in declaration order.
func ActionTypes() []ActionType {
	return []ActionType{SelectMail, SwitchFolder, Search, ComposeSend}
}

// String implements fmt.Stringer.
func (a ActionType) String() string {
	switch a {
	case SelectMail:
		return "SelectMail"
	case SwitchFolder:
		return "SwitchFolder"
	case Search:
		return "Search"
	case ComposeSend:
		return "ComposeSend"
	default:
		return fmt.Sprintf("ActionType(%d)", int(a))
	}
}

// ParseActionType converts a string produced by String back to an
// ActionType.
func ParseActionType(s string) (ActionType, error) {
	for _, a := range ActionTypes() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown action type %q", s)
}

// UserType distinguishes paying business users from free consumers
// (Section 3.3).
type UserType int

// User segments.
const (
	Business UserType = iota
	Consumer
	numUserTypes
)

// NumUserTypes is the number of user segments.
const NumUserTypes = int(numUserTypes)

// UserTypes lists all user types in declaration order.
func UserTypes() []UserType { return []UserType{Business, Consumer} }

// String implements fmt.Stringer.
func (u UserType) String() string {
	switch u {
	case Business:
		return "business"
	case Consumer:
		return "consumer"
	default:
		return fmt.Sprintf("UserType(%d)", int(u))
	}
}

// ParseUserType converts a string produced by String back to a UserType.
func ParseUserType(s string) (UserType, error) {
	for _, u := range UserTypes() {
		if u.String() == s {
			return u, nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown user type %q", s)
}

// Record is one logged user action: the (T, A, L, M) tuple. The latency is
// measured at the client from action initiation to completion and conveyed
// to the server, as in OWA. TZOffset carries the user's local-time offset so
// analyses can slot on local time. Failed marks an action that returned an
// error; per the paper such records are excluded from analysis.
type Record struct {
	Time      timeutil.Millis `json:"t"`
	Action    ActionType      `json:"a"`
	LatencyMS float64         `json:"l"`
	UserID    uint64          `json:"u"`
	UserType  UserType        `json:"ut"`
	TZOffset  timeutil.Millis `json:"tz"`
	Failed    bool            `json:"f,omitempty"`
}

// Validate checks the record's invariants.
func (r Record) Validate() error {
	if r.LatencyMS < 0 {
		return fmt.Errorf("telemetry: negative latency %v", r.LatencyMS)
	}
	if r.Action < 0 || int(r.Action) >= NumActionTypes {
		return fmt.Errorf("telemetry: invalid action type %d", r.Action)
	}
	if r.UserType < 0 || int(r.UserType) >= NumUserTypes {
		return fmt.Errorf("telemetry: invalid user type %d", r.UserType)
	}
	return nil
}

// SortByTime sorts records in place by ascending timestamp (stable, so
// simultaneous records keep their generation order).
func SortByTime(rs []Record) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Time < rs[j].Time })
}

// Filter returns the records matching keep, preserving order.
func Filter(rs []Record, keep func(Record) bool) []Record {
	out := make([]Record, 0, len(rs))
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Successful returns only the non-failed records, mirroring the paper's
// "we only focus on successful actions".
func Successful(rs []Record) []Record {
	return Filter(rs, func(r Record) bool { return !r.Failed })
}

// ByAction returns the records with the given action type.
func ByAction(rs []Record, a ActionType) []Record {
	return Filter(rs, func(r Record) bool { return r.Action == a })
}

// ByUserType returns the records with the given user segment.
func ByUserType(rs []Record, u UserType) []Record {
	return Filter(rs, func(r Record) bool { return r.UserType == u })
}

// ByTimeRange returns the records with lo <= Time < hi.
func ByTimeRange(rs []Record, lo, hi timeutil.Millis) []Record {
	return Filter(rs, func(r Record) bool { return r.Time >= lo && r.Time < hi })
}

// ByPeriod returns the records whose user-local time of day falls in the
// given 6-hour period.
func ByPeriod(rs []Record, p timeutil.Period) []Record {
	return Filter(rs, func(r Record) bool { return timeutil.PeriodOf(r.Time, r.TZOffset) == p })
}

// Latencies extracts the latency series in record order.
func Latencies(rs []Record) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.LatencyMS
	}
	return out
}

// distinctUsersEstimate sizes per-user maps ahead of the first insert.
// Real telemetry carries tens to thousands of records per user, so 1/16
// of the record count overshoots slightly for short logs and avoids
// rehash-and-copy growth for long ones.
func distinctUsersEstimate(records int) int {
	return records/16 + 16
}

// UserMedians returns each user's median latency over their records.
// Latencies are bucketed per user into one shared scratch slice and the
// per-user regions sorted in place, so the cost is a few fixed
// allocations rather than one growing slice per user.
func UserMedians(rs []Record) map[uint64]float64 {
	counts := make(map[uint64]int, distinctUsersEstimate(len(rs)))
	for i := range rs {
		counts[rs[i].UserID]++
	}
	// Carve scratch into one contiguous region per user; offs tracks each
	// user's fill position and ends at its region's end.
	offs := make(map[uint64]int, len(counts))
	next := 0
	for id, n := range counts {
		offs[id] = next
		next += n
	}
	scratch := make([]float64, len(rs))
	for i := range rs {
		id := rs[i].UserID
		p := offs[id]
		scratch[p] = rs[i].LatencyMS
		offs[id] = p + 1
	}
	out := make(map[uint64]float64, len(counts))
	for id, end := range offs {
		seg := scratch[end-counts[id] : end]
		sort.Float64s(seg)
		m, err := stats.QuantileSorted(seg, 0.5)
		if err != nil {
			continue // unreachable: every user here has >= 1 record
		}
		out[id] = m
	}
	return out
}

// Quartile identifies one of the four median-latency user groups of
// Section 3.4; Q1 is the fastest (lowest median latency).
type Quartile int

// Quartile labels.
const (
	Q1 Quartile = iota
	Q2
	Q3
	Q4
	numQuartiles
)

// NumQuartiles is the number of quartile groups.
const NumQuartiles = int(numQuartiles)

// String implements fmt.Stringer.
func (q Quartile) String() string {
	if q >= 0 && int(q) < NumQuartiles {
		return fmt.Sprintf("Q%d", int(q)+1)
	}
	return fmt.Sprintf("Quartile(%d)", int(q))
}

// AssignQuartiles groups users into quartiles of their median latency.
// Returns the per-user quartile map and the three latency cut points.
func AssignQuartiles(rs []Record) (map[uint64]Quartile, [3]float64, error) {
	medians := UserMedians(rs)
	if len(medians) < NumQuartiles {
		return nil, [3]float64{}, fmt.Errorf("telemetry: %d users is too few for quartiles", len(medians))
	}
	vals := make([]float64, 0, len(medians))
	for _, m := range medians {
		vals = append(vals, m)
	}
	q1, q2, q3, err := stats.Quartiles(vals)
	if err != nil {
		return nil, [3]float64{}, err
	}
	cuts := [3]float64{q1, q2, q3}
	out := make(map[uint64]Quartile, len(medians))
	for id, m := range medians {
		switch {
		case m <= q1:
			out[id] = Q1
		case m <= q2:
			out[id] = Q2
		case m <= q3:
			out[id] = Q3
		default:
			out[id] = Q4
		}
	}
	return out, cuts, nil
}

// ByQuartile splits records by their user's quartile assignment. Records of
// users missing from the map are dropped.
func ByQuartile(rs []Record, assign map[uint64]Quartile) [NumQuartiles][]Record {
	var out [NumQuartiles][]Record
	for _, r := range rs {
		q, ok := assign[r.UserID]
		if !ok {
			continue
		}
		out[q] = append(out[q], r)
	}
	return out
}
