package telemetry

import (
	"crypto/sha256"
	"encoding/binary"
)

// Anonymizer replaces user identifiers with salted one-way hashes, the way
// the paper's OWA logs carry "an anonymized GUID of the user": analyses can
// still group actions by user (medians, quartiles, sessions) without the
// identifier being reversible to an account. The same salt maps the same
// user to the same pseudonym; changing the salt unlinks datasets.
type Anonymizer struct {
	salt []byte
}

// NewAnonymizer builds an Anonymizer with the given salt. The salt should
// be secret and dataset-specific.
func NewAnonymizer(salt []byte) *Anonymizer {
	s := make([]byte, len(salt))
	copy(s, salt)
	return &Anonymizer{salt: s}
}

// UserID returns the pseudonymous identifier for id.
func (a *Anonymizer) UserID(id uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], id)
	h := sha256.New()
	h.Write(a.salt)
	h.Write(buf[:])
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}

// Record returns r with its UserID pseudonymized.
func (a *Anonymizer) Record(r Record) Record {
	r.UserID = a.UserID(r.UserID)
	return r
}

// Records pseudonymizes a batch in place and returns it.
func (a *Anonymizer) Records(rs []Record) []Record {
	for i := range rs {
		rs[i].UserID = a.UserID(rs[i].UserID)
	}
	return rs
}
