package telemetry

import (
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

func rec(t timeutil.Millis, a ActionType, l float64, uid uint64) Record {
	return Record{Time: t, Action: a, LatencyMS: l, UserID: uid, UserType: Business}
}

func TestActionTypeStringRoundTrip(t *testing.T) {
	for _, a := range ActionTypes() {
		got, err := ParseActionType(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v: %v, %v", a, got, err)
		}
	}
	if _, err := ParseActionType("bogus"); err == nil {
		t.Fatal("bogus action parsed")
	}
}

func TestUserTypeStringRoundTrip(t *testing.T) {
	for _, u := range UserTypes() {
		got, err := ParseUserType(u.String())
		if err != nil || got != u {
			t.Fatalf("round trip %v: %v, %v", u, got, err)
		}
	}
	if _, err := ParseUserType("bogus"); err == nil {
		t.Fatal("bogus user type parsed")
	}
}

func TestValidate(t *testing.T) {
	good := rec(0, SelectMail, 100, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		{LatencyMS: -1},
		{Action: ActionType(99)},
		{Action: ActionType(-1)},
		{UserType: UserType(99)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("bad record %d validated", i)
		}
	}
}

func TestSortByTimeStable(t *testing.T) {
	rs := []Record{
		rec(30, SelectMail, 1, 1),
		rec(10, Search, 2, 2),
		rec(10, ComposeSend, 3, 3),
		rec(20, SelectMail, 4, 4),
	}
	SortByTime(rs)
	if rs[0].Time != 10 || rs[1].Time != 10 || rs[2].Time != 20 || rs[3].Time != 30 {
		t.Fatalf("not sorted: %v", rs)
	}
	if rs[0].Action != Search || rs[1].Action != ComposeSend {
		t.Fatal("sort not stable for equal timestamps")
	}
}

func TestFilters(t *testing.T) {
	rs := []Record{
		rec(0, SelectMail, 1, 1),
		rec(100, Search, 2, 2),
		{Time: 200, Action: SelectMail, LatencyMS: 3, UserID: 3, UserType: Consumer},
		{Time: 300, Action: Search, LatencyMS: 4, UserID: 4, UserType: Business, Failed: true},
	}
	if got := len(ByAction(rs, SelectMail)); got != 2 {
		t.Fatalf("ByAction = %d", got)
	}
	if got := len(ByUserType(rs, Consumer)); got != 1 {
		t.Fatalf("ByUserType = %d", got)
	}
	if got := len(ByTimeRange(rs, 100, 300)); got != 2 {
		t.Fatalf("ByTimeRange = %d", got)
	}
	if got := len(Successful(rs)); got != 3 {
		t.Fatalf("Successful = %d", got)
	}
}

func TestByPeriod(t *testing.T) {
	// 9am local => Period8am2pm; 3am local => Period2am8am.
	rs := []Record{
		rec(9*timeutil.MillisPerHour, SelectMail, 1, 1),
		rec(3*timeutil.MillisPerHour, SelectMail, 1, 2),
	}
	if got := len(ByPeriod(rs, timeutil.Period8am2pm)); got != 1 {
		t.Fatalf("ByPeriod day = %d", got)
	}
	if got := len(ByPeriod(rs, timeutil.Period2am8am)); got != 1 {
		t.Fatalf("ByPeriod night = %d", got)
	}
	// A timezone offset moves the record between periods.
	rs[1].TZOffset = 6 * timeutil.MillisPerHour // 3am UTC + 6h = 9am local
	if got := len(ByPeriod(rs, timeutil.Period8am2pm)); got != 2 {
		t.Fatalf("ByPeriod with tz = %d", got)
	}
}

func TestLatencies(t *testing.T) {
	rs := []Record{rec(0, SelectMail, 10, 1), rec(1, SelectMail, 20, 1)}
	ls := Latencies(rs)
	if len(ls) != 2 || ls[0] != 10 || ls[1] != 20 {
		t.Fatalf("Latencies = %v", ls)
	}
}

func TestUserMedians(t *testing.T) {
	rs := []Record{
		rec(0, SelectMail, 10, 1),
		rec(1, SelectMail, 30, 1),
		rec(2, SelectMail, 20, 1),
		rec(3, SelectMail, 100, 2),
	}
	m := UserMedians(rs)
	if m[1] != 20 || m[2] != 100 {
		t.Fatalf("UserMedians = %v", m)
	}
}

func TestAssignQuartiles(t *testing.T) {
	var rs []Record
	// 100 users with median latency = 10*user id: clean quartiles.
	for uid := uint64(1); uid <= 100; uid++ {
		rs = append(rs, rec(timeutil.Millis(uid), SelectMail, float64(uid*10), uid))
	}
	assign, cuts, err := AssignQuartiles(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 100 {
		t.Fatalf("assigned %d users", len(assign))
	}
	if assign[1] != Q1 || assign[100] != Q4 {
		t.Fatalf("extremes misassigned: %v %v", assign[1], assign[100])
	}
	if !(cuts[0] < cuts[1] && cuts[1] < cuts[2]) {
		t.Fatalf("cuts not increasing: %v", cuts)
	}
	// Roughly equal group sizes.
	var sizes [NumQuartiles]int
	for _, q := range assign {
		sizes[q]++
	}
	for q, n := range sizes {
		if n < 20 || n > 30 {
			t.Fatalf("quartile %d has %d users", q, n)
		}
	}
}

func TestAssignQuartilesTooFewUsers(t *testing.T) {
	rs := []Record{rec(0, SelectMail, 1, 1), rec(1, SelectMail, 2, 2)}
	if _, _, err := AssignQuartiles(rs); err == nil {
		t.Fatal("too-few-users accepted")
	}
}

func TestByQuartile(t *testing.T) {
	rs := []Record{
		rec(0, SelectMail, 1, 1),
		rec(1, SelectMail, 2, 2),
		rec(2, SelectMail, 3, 3), // not assigned
	}
	assign := map[uint64]Quartile{1: Q1, 2: Q4}
	groups := ByQuartile(rs, assign)
	if len(groups[Q1]) != 1 || len(groups[Q4]) != 1 || len(groups[Q2]) != 0 {
		t.Fatalf("ByQuartile groups = %v", groups)
	}
}

func TestQuartileString(t *testing.T) {
	if Q1.String() != "Q1" || Q4.String() != "Q4" {
		t.Fatal("quartile names wrong")
	}
}

func TestQuartileMonotonicityProperty(t *testing.T) {
	// Users with strictly higher median latency never land in a lower
	// quartile.
	s := rng.New(1)
	var rs []Record
	medians := make(map[uint64]float64)
	for uid := uint64(1); uid <= 200; uid++ {
		l := s.LogNormal(5, 0.8)
		medians[uid] = l
		rs = append(rs, rec(timeutil.Millis(uid), SelectMail, l, uid))
	}
	assign, _, err := AssignQuartiles(rs)
	if err != nil {
		t.Fatal(err)
	}
	for a, qa := range assign {
		for b, qb := range assign {
			if medians[a] < medians[b] && qa > qb {
				t.Fatalf("user %d (median %v, %v) above user %d (median %v, %v)",
					a, medians[a], qa, b, medians[b], qb)
			}
		}
	}
}
