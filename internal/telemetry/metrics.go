package telemetry

import (
	"sync/atomic"

	"autosens/internal/obs"
)

// Ingest metrics follow the core package's pattern: package-scoped (the
// codecs are constructed ad hoc all over the ingest path, so per-instance
// registries would fragment the numbers) and disabled until EnableMetrics
// is called, after which every Reader/Writer in the process reports.

type ingestMetrics struct {
	decoded   *obs.Counter
	encoded   *obs.Counter
	fallbacks *obs.Counter
	blocks    *obs.Counter
}

var ingestPtr atomic.Pointer[ingestMetrics]

// EnableMetrics registers the ingest-path autosens_ingest_* metrics on reg
// and turns on reporting for every telemetry Reader and Writer in the
// process. Call once at startup.
func EnableMetrics(reg *obs.Registry) {
	m := &ingestMetrics{
		decoded: reg.Counter("autosens_ingest_records_decoded_total",
			"records decoded from any telemetry format"),
		encoded: reg.Counter("autosens_ingest_records_encoded_total",
			"records encoded to any telemetry format"),
		fallbacks: reg.Counter("autosens_ingest_jsonl_fallbacks_total",
			"JSONL lines that left the zero-allocation fast path for encoding/json"),
		blocks: reg.Counter("autosens_ingest_tbin_blocks_total",
			"TBIN blocks framed and written"),
	}
	ingestPtr.Store(m)
}

func observeDecoded() {
	if m := ingestPtr.Load(); m != nil {
		m.decoded.Inc()
	}
}

func observeEncoded() {
	if m := ingestPtr.Load(); m != nil {
		m.encoded.Inc()
	}
}

func observeJSONLFallback() {
	if m := ingestPtr.Load(); m != nil {
		m.fallbacks.Inc()
	}
}

func observeTBINBlock() {
	if m := ingestPtr.Load(); m != nil {
		m.blocks.Inc()
	}
}
