package telemetry

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

func sampleRecords() []Record {
	return []Record{
		{Time: 0, Action: SelectMail, LatencyMS: 312.5, UserID: 42, UserType: Business, TZOffset: -5 * timeutil.MillisPerHour},
		{Time: 1500, Action: Search, LatencyMS: 890, UserID: 7, UserType: Consumer, TZOffset: 0, Failed: true},
		{Time: 99999, Action: ComposeSend, LatencyMS: 45.25, UserID: 1 << 60, UserType: Business, TZOffset: timeutil.MillisPerHour},
	}
}

func roundTrip(t *testing.T, f Format) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, f)
	if err := w.WriteAll(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	r := NewReader(&buf, f)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) { roundTrip(t, JSONL) }
func TestCSVRoundTrip(t *testing.T)   { roundTrip(t, CSV) }

func TestJSONLSkipsBlankLines(t *testing.T) {
	in := `{"t":1,"a":0,"l":5,"u":1,"ut":0,"tz":0}

{"t":2,"a":1,"l":6,"u":2,"ut":1,"tz":0}
`
	r := NewReader(strings.NewReader(in), JSONL)
	rs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("read %d records", len(rs))
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	r := NewReader(strings.NewReader("not json\n"), JSONL)
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("garbage accepted: %v", err)
	}
}

func TestJSONLRejectsInvalidRecord(t *testing.T) {
	r := NewReader(strings.NewReader(`{"t":1,"a":99,"l":5,"u":1,"ut":0,"tz":0}`+"\n"), JSONL)
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("invalid action accepted: %v", err)
	}
}

func TestCSVHeaderRequiredOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, CSV)
	if err := w.WriteAll(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV line count = %d, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_ms,") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

func TestCSVRejectsBadRow(t *testing.T) {
	in := "time_ms,action,latency_ms,user_id,user_type,tz_offset_ms,failed\nx,SelectMail,5,1,business,0,false\n"
	r := NewReader(strings.NewReader(in), CSV)
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("bad row accepted: %v", err)
	}
}

func TestCSVWithoutHeaderStillParses(t *testing.T) {
	in := "123,SelectMail,5,1,business,0,false\n"
	r := NewReader(strings.NewReader(in), CSV)
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time != 123 || rec.Action != SelectMail {
		t.Fatalf("parsed %+v", rec)
	}
}

func TestWriterRejectsInvalidRecord(t *testing.T) {
	w := NewWriter(io.Discard, JSONL)
	if err := w.Write(Record{LatencyMS: -1}); err == nil {
		t.Fatal("invalid record written")
	}
}

func TestEmptyStream(t *testing.T) {
	for _, f := range []Format{JSONL, CSV} {
		r := NewReader(strings.NewReader(""), f)
		rs, err := r.ReadAll()
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if len(rs) != 0 {
			t.Fatalf("format %d: read %d records from empty stream", f, len(rs))
		}
	}
}

func TestLargeRoundTrip(t *testing.T) {
	s := rng.New(5)
	var rs []Record
	for i := 0; i < 5000; i++ {
		rs = append(rs, Record{
			Time:      timeutil.Millis(i * 100),
			Action:    ActionType(s.Intn(NumActionTypes)),
			LatencyMS: s.LogNormal(6, 0.5),
			UserID:    uint64(s.Intn(500)),
			UserType:  UserType(s.Intn(NumUserTypes)),
			TZOffset:  timeutil.Millis(s.Intn(24)-12) * timeutil.MillisPerHour,
			Failed:    s.Bool(0.02),
		})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, JSONL)
	if err := w.WriteAll(rs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf, JSONL).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("read %d, want %d", len(got), len(rs))
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func BenchmarkJSONLWrite(b *testing.B) {
	rs := sampleRecords()
	w := NewWriter(io.Discard, JSONL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rs[i%len(rs)]); err != nil {
			b.Fatal(err)
		}
	}
}
