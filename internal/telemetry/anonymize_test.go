package telemetry

import "testing"

func TestAnonymizerDeterministic(t *testing.T) {
	a := NewAnonymizer([]byte("salt-1"))
	if a.UserID(42) != a.UserID(42) {
		t.Fatal("same id maps to different pseudonyms")
	}
}

func TestAnonymizerDistinguishesUsers(t *testing.T) {
	a := NewAnonymizer([]byte("salt-1"))
	seen := make(map[uint64]bool)
	for id := uint64(0); id < 10000; id++ {
		p := a.UserID(id)
		if seen[p] {
			t.Fatalf("pseudonym collision at id %d", id)
		}
		seen[p] = true
	}
}

func TestAnonymizerSaltUnlinks(t *testing.T) {
	a := NewAnonymizer([]byte("salt-1"))
	b := NewAnonymizer([]byte("salt-2"))
	same := 0
	for id := uint64(0); id < 1000; id++ {
		if a.UserID(id) == b.UserID(id) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d pseudonyms survived a salt change", same)
	}
}

func TestAnonymizerRecordPreservesPayload(t *testing.T) {
	a := NewAnonymizer([]byte("s"))
	orig := Record{Time: 5, Action: Search, LatencyMS: 123, UserID: 9, UserType: Consumer}
	got := a.Record(orig)
	if got.UserID == orig.UserID {
		t.Fatal("user id unchanged")
	}
	got.UserID = orig.UserID
	if got != orig {
		t.Fatal("non-identifier fields modified")
	}
}

func TestAnonymizerRecordsGroupingPreserved(t *testing.T) {
	a := NewAnonymizer([]byte("s"))
	rs := []Record{
		{Time: 1, Action: SelectMail, LatencyMS: 1, UserID: 7},
		{Time: 2, Action: SelectMail, LatencyMS: 2, UserID: 7},
		{Time: 3, Action: SelectMail, LatencyMS: 3, UserID: 8},
	}
	a.Records(rs)
	if rs[0].UserID != rs[1].UserID {
		t.Fatal("same-user records unlinked")
	}
	if rs[0].UserID == rs[2].UserID {
		t.Fatal("distinct users merged")
	}
}

func TestAnonymizerSaltCopied(t *testing.T) {
	salt := []byte("mutable")
	a := NewAnonymizer(salt)
	before := a.UserID(1)
	salt[0] = 'X'
	if a.UserID(1) != before {
		t.Fatal("anonymizer shares caller's salt buffer")
	}
}
