package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// encodeAll writes recs in the given format and returns the raw stream.
func encodeAll(b *testing.B, recs []Record, format Format) []byte {
	b.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, format)
	if err := w.WriteAll(recs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkDecodeJSONLStdlib is the pre-optimization baseline: the exact
// scanner + json.Unmarshal loop the Reader used before the fast path.
func BenchmarkDecodeJSONLStdlib(b *testing.B) {
	recs := genRecords(5000, 3)
	data := encodeAll(b, recs, JSONL)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := bufio.NewScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			var rec Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if n != len(recs) {
			b.Fatalf("decoded %d want %d", n, len(recs))
		}
	}
}

func benchmarkDecode(b *testing.B, format Format) {
	recs := genRecords(5000, 3)
	data := encodeAll(b, recs, format)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data), format)
		n := 0
		for {
			if _, err := r.Read(); err != nil {
				break
			}
			n++
		}
		r.Close()
		if n != len(recs) {
			b.Fatalf("decoded %d want %d", n, len(recs))
		}
	}
}

func BenchmarkDecodeJSONLFast(b *testing.B) { benchmarkDecode(b, JSONL) }
func BenchmarkDecodeTBIN(b *testing.B)      { benchmarkDecode(b, TBIN) }

// BenchmarkEncodeJSONLStdlib is the pre-optimization baseline: one
// json.Marshal per record, as the Writer did before AppendRecordJSON.
func BenchmarkEncodeJSONLStdlib(b *testing.B) {
	recs := genRecords(5000, 5)
	b.ReportAllocs()
	b.ResetTimer()
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		for _, rec := range recs {
			line, err := json.Marshal(rec)
			if err != nil {
				b.Fatal(err)
			}
			bw.Write(line)
			bw.WriteByte('\n')
		}
		bw.Flush()
		bytesOut = int64(buf.Len())
	}
	b.SetBytes(bytesOut)
}

func benchmarkEncode(b *testing.B, format Format) {
	recs := genRecords(5000, 5)
	b.ReportAllocs()
	b.ResetTimer()
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, format)
		if err := w.WriteAll(recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		bytesOut = int64(buf.Len())
	}
	b.SetBytes(bytesOut)
}

func BenchmarkEncodeJSONLFast(b *testing.B) { benchmarkEncode(b, JSONL) }
func BenchmarkEncodeTBIN(b *testing.B)      { benchmarkEncode(b, TBIN) }

func BenchmarkUserMedians(b *testing.B) {
	recs := genRecords(20000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := UserMedians(recs); len(m) == 0 {
			b.Fatal("no medians")
		}
	}
}

func BenchmarkAssignQuartiles(b *testing.B) {
	recs := genRecords(20000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AssignQuartiles(recs); err != nil {
			b.Fatal(err)
		}
	}
}
