//go:build !race

package telemetry

import (
	"bytes"
	"testing"
)

// Allocation-pinning tests: the hot decode loops must not allocate per
// record. Budgets are small fixed counts (reader construction, pooled
// buffer misses) that do not scale with the 5000-record input; a
// per-record regression would blow past them by orders of magnitude.
// Excluded under -race because the race runtime changes allocation
// behavior.

func decodeAllocsPerRun(t *testing.T, data []byte, format Format, want int) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		r := NewReader(bytes.NewReader(data), format)
		n := 0
		for {
			if _, err := r.Read(); err != nil {
				break
			}
			n++
		}
		r.Close()
		if n != want {
			t.Fatalf("decoded %d want %d", n, want)
		}
	})
}

func TestDecodeJSONLFastAllocsPinned(t *testing.T) {
	recs := genRecords(5000, 19)
	var buf bytes.Buffer
	w := NewWriter(&buf, JSONL)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeAllocsPerRun(t, buf.Bytes(), JSONL, len(recs)); got > 16 {
		t.Fatalf("JSONL decode of %d records allocates %.0f times, want fixed overhead only", len(recs), got)
	}
}

func TestDecodeTBINAllocsPinned(t *testing.T) {
	recs := genRecords(5000, 19)
	var buf bytes.Buffer
	w := NewWriter(&buf, TBIN)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeAllocsPerRun(t, buf.Bytes(), TBIN, len(recs)); got > 16 {
		t.Fatalf("TBIN decode of %d records allocates %.0f times, want fixed overhead only", len(recs), got)
	}
}

func TestEncodeJSONLFastAllocsPinned(t *testing.T) {
	recs := genRecords(5000, 19)
	sink := bytes.NewBuffer(make([]byte, 0, 1<<20))
	got := testing.AllocsPerRun(10, func() {
		sink.Reset()
		w := NewWriter(sink, JSONL)
		if err := w.WriteAll(recs); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
	if got > 16 {
		t.Fatalf("JSONL encode of %d records allocates %.0f times, want fixed overhead only", len(recs), got)
	}
}

// TestUserMediansAllocsBounded checks the rewrite's claim: allocation count
// is a function of the distinct-user count, not the record count. Doubling
// records at a fixed user population must not double allocations.
func TestUserMediansAllocsBounded(t *testing.T) {
	small := genRecords(10000, 19)
	large := append(append([]Record(nil), small...), genRecords(10000, 23)...)
	aSmall := testing.AllocsPerRun(5, func() { UserMedians(small) })
	aLarge := testing.AllocsPerRun(5, func() { UserMedians(large) })
	if aLarge > aSmall*1.5+16 {
		t.Fatalf("UserMedians allocs scale with records: %d recs -> %.0f allocs, %d recs -> %.0f allocs",
			len(small), aSmall, len(large), aLarge)
	}
}
