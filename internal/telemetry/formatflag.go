package telemetry

import "fmt"

// FormatFlag is a flag.Value for -format flags, deduplicating the parsing
// that owagen, autosens, sensd and loadgen each hand-rolled. Register it
// with flag.Var:
//
//	format := telemetry.NewFormatFlag(telemetry.JSONL)
//	flag.Var(format, "format", "telemetry format: "+format.Choices())
//
// Allowed restricts the accepted formats (nil allows all); wire-protocol
// flags pass {JSONL, TBIN} since CSV has no wire encoding.
type FormatFlag struct {
	f       Format
	Allowed []Format
}

// NewFormatFlag returns a FormatFlag defaulting to def.
func NewFormatFlag(def Format, allowed ...Format) *FormatFlag {
	return &FormatFlag{f: def, Allowed: allowed}
}

// Format returns the selected format.
func (ff *FormatFlag) Format() Format { return ff.f }

// String implements flag.Value.
func (ff *FormatFlag) String() string {
	if ff == nil {
		return ""
	}
	return ff.f.String()
}

// Set implements flag.Value, accepting the ParseFormat names plus "json"
// as an alias for jsonl (the wire encoding is a JSON array).
func (ff *FormatFlag) Set(s string) error {
	f, err := ParseFormat(s)
	if err != nil {
		return err
	}
	if len(ff.Allowed) > 0 {
		ok := false
		for _, a := range ff.Allowed {
			if f == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("telemetry: format %q not supported here (want %s)", s, ff.Choices())
		}
	}
	ff.f = f
	return nil
}

// Choices renders the accepted format names for flag usage strings.
func (ff *FormatFlag) Choices() string {
	formats := ff.Allowed
	if len(formats) == 0 {
		formats = []Format{JSONL, CSV, TBIN}
	}
	out := ""
	for i, f := range formats {
		if i > 0 {
			out += ", "
		}
		out += f.String()
	}
	return out
}
