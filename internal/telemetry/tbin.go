package telemetry

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"autosens/internal/timeutil"
)

// TBIN is a compact block-framed binary record format:
//
//	stream  := magic block*
//	magic   := "TBN1"
//	block   := uvarint(recordCount) uvarint(len(payload)) payload
//	payload := uvarint(len(tzDict)) zigzag(tzDict[0]) ... records
//	record  := tag delta user tz latency
//	tag     := byte — bits 0-1 action, bit 2 user type, bit 3 failed
//	delta   := zigzag varint of Time minus the previous record's Time
//	           (the first record in a block is relative to zero)
//	user    := uvarint UserID
//	tz      := uvarint index into the block's tzDict
//	latency := 8-byte little-endian IEEE 754 bits
//
// Times are delta-coded because telemetry is written roughly
// chronologically, timezone offsets are dictionary-coded because a block
// sees only a handful of distinct values, and the enums ride in one tag
// byte. Each block resets the time base and dictionary and announces its
// record count and byte length up front, so a reader can skip blocks
// without parsing them and workers can decode different blocks in
// parallel.

const tbinMagic = "TBN1"

const (
	// tbinBlockRecords caps records per block.
	tbinBlockRecords = 4096
	// tbinBlockBytes triggers an early block flush on bulky payloads.
	tbinBlockBytes = 1 << 16
	// tbinMaxPayload bounds the payload length a reader will buffer, so a
	// corrupt frame cannot provoke a huge allocation.
	tbinMaxPayload = 1 << 24
)

// bufPool recycles the scratch buffers behind writers and readers; Close
// returns them. One pool serves every codec because the buffers are all
// plain byte slices of similar magnitude.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1<<16)
		return &b
	},
}

func getBuf() []byte  { return (*bufPool.Get().(*[]byte))[:0] }
func putBuf(b []byte) { bufPool.Put(&b) }
func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}
func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// tbinWriter accumulates one block at a time.
type tbinWriter struct {
	block    []byte // encoded records of the open block (pooled)
	scratch  []byte // per-flush frame assembly buffer (pooled)
	recs     int
	prevTime int64
	dict     map[int64]uint64
	dictVals []int64
	header   bool
	varint   [binary.MaxVarintLen64]byte
}

func newTBINWriter() *tbinWriter {
	return &tbinWriter{
		block:   getBuf(),
		scratch: getBuf(),
		dict:    make(map[int64]uint64, 8),
	}
}

func (t *tbinWriter) appendUvarint(dst []byte, v uint64) []byte {
	n := binary.PutUvarint(t.varint[:], v)
	return append(dst, t.varint[:n]...)
}

// write encodes one record into the open block and flushes the block to
// out when it is full.
func (t *tbinWriter) write(r Record, out io.Writer) error {
	tag := byte(r.Action)&3 | byte(r.UserType)&1<<2
	if r.Failed {
		tag |= 1 << 3
	}
	t.block = append(t.block, tag)
	t.block = t.appendUvarint(t.block, zigzag(int64(r.Time)-t.prevTime))
	t.prevTime = int64(r.Time)
	t.block = t.appendUvarint(t.block, r.UserID)
	idx, ok := t.dict[int64(r.TZOffset)]
	if !ok {
		idx = uint64(len(t.dictVals))
		t.dict[int64(r.TZOffset)] = idx
		t.dictVals = append(t.dictVals, int64(r.TZOffset))
	}
	t.block = t.appendUvarint(t.block, idx)
	t.block = binary.LittleEndian.AppendUint64(t.block, math.Float64bits(r.LatencyMS))
	t.recs++
	if t.recs >= tbinBlockRecords || len(t.block) >= tbinBlockBytes {
		return t.flushBlock(out)
	}
	return nil
}

// flushBlock frames and emits the open block (a no-op when empty) and
// guarantees the stream header exists.
func (t *tbinWriter) flushBlock(out io.Writer) error {
	if !t.header {
		if _, err := io.WriteString(out, tbinMagic); err != nil {
			return err
		}
		t.header = true
	}
	if t.recs == 0 {
		return nil
	}
	payload := t.scratch[:0]
	payload = t.appendUvarint(payload, uint64(len(t.dictVals)))
	for _, tz := range t.dictVals {
		payload = t.appendUvarint(payload, zigzag(tz))
	}
	payload = append(payload, t.block...)
	t.scratch = payload

	frame := t.varint[:0]
	frame = t.appendUvarint(frame, uint64(t.recs))
	if _, err := out.Write(frame); err != nil {
		return err
	}
	frame = t.varint[:0]
	frame = t.appendUvarint(frame, uint64(len(payload)))
	if _, err := out.Write(frame); err != nil {
		return err
	}
	if _, err := out.Write(payload); err != nil {
		return err
	}
	observeTBINBlock()
	t.block = t.block[:0]
	t.recs = 0
	t.prevTime = 0
	clear(t.dict)
	t.dictVals = t.dictVals[:0]
	return nil
}

// release returns pooled buffers; the writer must not be used afterwards.
func (t *tbinWriter) release() {
	putBuf(t.block)
	putBuf(t.scratch)
	t.block, t.scratch = nil, nil
}

// tbinReader streams records back out of TBIN frames.
type tbinReader struct {
	br       io.ByteReader
	r        io.Reader
	payload  []byte // pooled backing for the current block
	pos      int
	remain   int
	prevTime int64
	dict     []int64
	header   bool
	block    int
}

func newTBINReader(r io.Reader, br io.ByteReader) *tbinReader {
	return &tbinReader{r: r, br: br, payload: getBuf()}
}

func (t *tbinReader) errf(format string, args ...any) error {
	return fmt.Errorf("telemetry: tbin block %d: %s", t.block, fmt.Sprintf(format, args...))
}

// readHeader consumes the magic. An immediately empty stream is a valid
// empty log.
func (t *tbinReader) readHeader() error {
	var magic [len(tbinMagic)]byte
	n, err := io.ReadFull(t.r, magic[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("telemetry: tbin header: %w", err)
	}
	if string(magic[:]) != tbinMagic {
		return fmt.Errorf("telemetry: not a TBIN stream (bad magic %q)", magic[:])
	}
	t.header = true
	return nil
}

// nextBlock loads and validates the next frame. io.EOF means a clean end
// of stream.
func (t *tbinReader) nextBlock() error {
	if !t.header {
		if err := t.readHeader(); err != nil {
			return err
		}
	}
	count, err := binary.ReadUvarint(t.br)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return t.errf("frame count: %v", err)
	}
	size, err := binary.ReadUvarint(t.br)
	if err != nil {
		return t.errf("frame length: %v", err)
	}
	if size > tbinMaxPayload {
		return t.errf("payload length %d exceeds cap %d", size, tbinMaxPayload)
	}
	// Every record costs at least 12 bytes, so a count wildly out of
	// proportion to the payload is corruption, not data.
	if count == 0 || count > size {
		return t.errf("implausible record count %d for %d payload bytes", count, size)
	}
	if cap(t.payload) < int(size) {
		t.payload = make([]byte, size)
	}
	t.payload = t.payload[:size]
	if _, err := io.ReadFull(t.r, t.payload); err != nil {
		return t.errf("payload: %v", err)
	}
	t.pos = 0
	t.prevTime = 0
	dictLen, ok := t.uvarint()
	if !ok || dictLen > size {
		return t.errf("bad tz dictionary length")
	}
	t.dict = t.dict[:0]
	for i := uint64(0); i < dictLen; i++ {
		v, ok := t.uvarint()
		if !ok {
			return t.errf("truncated tz dictionary")
		}
		t.dict = append(t.dict, unzigzag(v))
	}
	t.remain = int(count)
	t.block++
	return nil
}

func (t *tbinReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(t.payload[t.pos:])
	if n <= 0 {
		return 0, false
	}
	t.pos += n
	return v, true
}

// read decodes the next record, crossing block boundaries as needed.
func (t *tbinReader) read() (Record, error) {
	for t.remain == 0 {
		if err := t.nextBlock(); err != nil {
			return Record{}, err
		}
	}
	if t.pos >= len(t.payload) {
		return Record{}, t.errf("payload ends mid-record")
	}
	tag := t.payload[t.pos]
	t.pos++
	if tag&^0b1111 != 0 {
		return Record{}, t.errf("invalid tag byte %#x", tag)
	}
	var rec Record
	rec.Action = ActionType(tag & 3)
	rec.UserType = UserType(tag >> 2 & 1)
	rec.Failed = tag&(1<<3) != 0
	delta, ok := t.uvarint()
	if !ok {
		return Record{}, t.errf("truncated time delta")
	}
	t.prevTime += unzigzag(delta)
	rec.Time = timeutil.Millis(t.prevTime)
	user, ok := t.uvarint()
	if !ok {
		return Record{}, t.errf("truncated user id")
	}
	rec.UserID = user
	tzIdx, ok := t.uvarint()
	if !ok {
		return Record{}, t.errf("truncated tz index")
	}
	if tzIdx >= uint64(len(t.dict)) {
		return Record{}, t.errf("tz index %d outside dictionary of %d", tzIdx, len(t.dict))
	}
	rec.TZOffset = timeutil.Millis(t.dict[tzIdx])
	if t.pos+8 > len(t.payload) {
		return Record{}, t.errf("truncated latency")
	}
	rec.LatencyMS = math.Float64frombits(binary.LittleEndian.Uint64(t.payload[t.pos:]))
	t.pos += 8
	t.remain--
	if t.remain == 0 && t.pos != len(t.payload) {
		return Record{}, t.errf("%d trailing payload bytes", len(t.payload)-t.pos)
	}
	return rec, nil
}

// skipBlock discards the next whole frame without parsing it and returns
// the number of records skipped. It is only valid on a block boundary
// (before the first Read of a block).
func (t *tbinReader) skipBlock() (int, error) {
	if t.remain != 0 {
		return 0, t.errf("skip mid-block (%d records pending)", t.remain)
	}
	if !t.header {
		if err := t.readHeader(); err != nil {
			return 0, err
		}
	}
	count, err := binary.ReadUvarint(t.br)
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, t.errf("frame count: %v", err)
	}
	size, err := binary.ReadUvarint(t.br)
	if err != nil {
		return 0, t.errf("frame length: %v", err)
	}
	if size > tbinMaxPayload {
		return 0, t.errf("payload length %d exceeds cap %d", size, tbinMaxPayload)
	}
	if _, err := io.CopyN(io.Discard, t.r, int64(size)); err != nil {
		return 0, t.errf("skip payload: %v", err)
	}
	t.block++
	return int(count), nil
}

// release returns pooled buffers; the reader must not be used afterwards.
func (t *tbinReader) release() {
	if t.payload != nil {
		putBuf(t.payload)
		t.payload = nil
	}
}
