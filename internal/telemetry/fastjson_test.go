package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

// genRecords builds n deterministic records shaped like simulator output,
// with occasional adversarial values mixed in.
func genRecords(n int, seed uint64) []Record {
	s := rng.New(seed)
	out := make([]Record, 0, n)
	t := timeutil.Millis(0)
	for i := 0; i < n; i++ {
		t += timeutil.Millis(s.Intn(5000))
		rec := Record{
			Time:      t,
			Action:    ActionType(s.Intn(NumActionTypes)),
			LatencyMS: s.LogNormal(6, 0.5),
			UserID:    uint64(s.Intn(5000)),
			UserType:  UserType(s.Intn(NumUserTypes)),
			TZOffset:  timeutil.Millis(s.Intn(27)-12) * timeutil.MillisPerHour,
			Failed:    s.Bool(0.02),
		}
		switch i % 97 {
		case 13:
			rec.LatencyMS = 0
		case 29:
			rec.LatencyMS = 1e-9 // forces the 'e' float form
		case 43:
			rec.LatencyMS = 3.5e21
		case 61:
			rec.UserID = math.MaxUint64
		case 71:
			rec.Time = -rec.Time // negative timestamps are legal
		}
		out = append(out, rec)
	}
	return out
}

func TestAppendRecordJSONMatchesStdlib(t *testing.T) {
	for i, rec := range genRecords(2000, 11) {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendRecordJSON(nil, rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: fast %s != stdlib %s", i, got, want)
		}
	}
}

func TestAppendRecordJSONRejectsNonFinite(t *testing.T) {
	for _, l := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := AppendRecordJSON(nil, Record{LatencyMS: l}); err == nil {
			t.Fatalf("latency %v encoded", l)
		}
	}
}

func TestParseRecordFastMatchesStdlib(t *testing.T) {
	for i, rec := range genRecords(2000, 13) {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := parseRecordFast(line)
		if !ok {
			t.Fatalf("record %d: fast path refused %s", i, line)
		}
		if got != rec {
			t.Fatalf("record %d: got %+v want %+v", i, got, rec)
		}
	}
}

// TestParseRecordFastAgreesOrFallsBack feeds the fast parser shapes it is
// not required to handle; whenever it does claim success, the result must
// match encoding/json exactly.
func TestParseRecordFastAgreesOrFallsBack(t *testing.T) {
	lines := []string{
		`{}`,
		`{"t":1,"a":2,"l":5.5,"u":3,"ut":1,"tz":-60000}`,
		`{"tz":-60000,"u":3,"t":1,"f":true,"a":2,"l":5.5,"ut":1}`, // shuffled keys
		`{"t":1,"a":2,"l":5.5,"u":3,"ut":1,"tz":0,"f":false}`,
		`{"t": 1, "a": 2, "l": 5.5, "u": 3, "ut": 1, "tz": 0}`, // whitespace
		`{"t":1,"t":2,"a":0,"l":1,"u":1,"ut":0,"tz":0}`,        // duplicate key
		`{"t":1e3,"a":0,"l":1,"u":1,"ut":0,"tz":0}`,            // exponent int
		`{"t":01,"a":0,"l":1,"u":1,"ut":0,"tz":0}`,             // leading zero
		`{"t":1,"a":0,"l":+1,"u":1,"ut":0,"tz":0}`,             // bad float sign
		`{"t":1,"a":0,"l":0x10,"u":1,"ut":0,"tz":0}`,           // hex float
		`{"t":1,"a":0,"l":1e999,"u":1,"ut":0,"tz":0}`,          // out of range
		`{"t":1,"a":0,"l":1,"u":-1,"ut":0,"tz":0}`,             // negative uint
		`{"t":1,"a":0,"l":1,"u":1,"ut":0,"tz":0,"x":1}`,        // unknown key
		`{"t":1,"a":0,"l":1,"u":1,"ut":0,"tz":0,"f":1}`,        // non-bool flag
		`{"t":-0,"a":0,"l":-0.0,"u":0,"ut":0,"tz":-0}`,
		`{"t":9223372036854775807,"a":0,"l":1,"u":18446744073709551615,"ut":0,"tz":-9223372036854775808}`,
		`{"t":9223372036854775808,"a":0,"l":1,"u":1,"ut":0,"tz":0}`, // int64 overflow
		`{"l":2e-7,"t":0,"a":0,"u":0,"ut":0,"tz":0}`,
		`{"l":123456789.12345678901234567890,"t":0,"a":0,"u":0,"ut":0,"tz":0}`,
	}
	for _, line := range lines {
		var want Record
		stdErr := json.Unmarshal([]byte(line), &want)
		got, ok := parseRecordFast([]byte(line))
		if !ok {
			continue // fallback is always acceptable
		}
		if stdErr != nil {
			t.Errorf("fast path accepted %q which stdlib rejects: %v", line, stdErr)
			continue
		}
		if got != want {
			t.Errorf("%q: fast %+v != stdlib %+v", line, got, want)
		}
	}
}

func TestReaderFallsBackOnStdlibShapes(t *testing.T) {
	// Whitespace-laden but valid JSON must still decode through the
	// fallback, exactly as before the fast path existed.
	in := "{ \"t\": 5, \"a\": 1, \"l\": 2.5, \"u\": 9, \"ut\": 1, \"tz\": 0 }\n"
	rs, err := NewReader(strings.NewReader(in), JSONL).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Time != 5 || rs[0].Action != SwitchFolder || rs[0].LatencyMS != 2.5 {
		t.Fatalf("parsed %+v", rs)
	}
}

func TestWriterReaderFastRoundTripLarge(t *testing.T) {
	recs := genRecords(20000, 17)
	var buf bytes.Buffer
	w := NewWriter(&buf, JSONL)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), JSONL)
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}
