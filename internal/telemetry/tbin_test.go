package telemetry

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestTBINRoundTrip(t *testing.T) { roundTrip(t, TBIN) }

func TestTBINRoundTripLarge(t *testing.T) {
	recs := genRecords(20000, 23) // spans multiple blocks
	var buf bytes.Buffer
	w := NewWriter(&buf, TBIN)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), TBIN)
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestTBINSmallerThanJSONL(t *testing.T) {
	recs := genRecords(10000, 29)
	var jbuf, tbuf bytes.Buffer
	for _, p := range []struct {
		w *bytes.Buffer
		f Format
	}{{&jbuf, JSONL}, {&tbuf, TBIN}} {
		w := NewWriter(p.w, p.f)
		if err := w.WriteAll(recs); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if ratio := float64(jbuf.Len()) / float64(tbuf.Len()); ratio < 3 {
		t.Fatalf("TBIN only %.2fx smaller than JSONL (%d vs %d bytes), want >= 3x",
			ratio, tbuf.Len(), jbuf.Len())
	}
}

func TestTBINEmptyFlushedStreamIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, TBIN)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != tbinMagic {
		t.Fatalf("empty stream = %q", buf.Bytes())
	}
	rs, err := NewReader(bytes.NewReader(buf.Bytes()), TBIN).ReadAll()
	if err != nil || len(rs) != 0 {
		t.Fatalf("ReadAll = %d records, %v", len(rs), err)
	}
}

func TestTBINEmptyInputIsEmptyStream(t *testing.T) {
	rs, err := NewReader(strings.NewReader(""), TBIN).ReadAll()
	if err != nil || len(rs) != 0 {
		t.Fatalf("ReadAll = %d records, %v", len(rs), err)
	}
}

func TestTBINRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("nope"), TBIN).ReadAll(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTBINRejectsCorruption(t *testing.T) {
	recs := genRecords(100, 31)
	var buf bytes.Buffer
	w := NewWriter(&buf, TBIN)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Truncations and single-byte corruptions must error (or, for byte
	// flips in latency bits, at worst decode to different records), never
	// panic or loop.
	for cut := 0; cut < len(clean); cut += 7 {
		r := NewReader(bytes.NewReader(clean[:cut]), TBIN)
		for {
			if _, err := r.Read(); err != nil {
				break
			}
		}
		r.Close()
	}
	for i := 0; i < len(clean); i += 3 {
		mut := bytes.Clone(clean)
		mut[i] ^= 0x5a
		r := NewReader(bytes.NewReader(mut), TBIN)
		for n := 0; ; n++ {
			if _, err := r.Read(); err != nil {
				break
			}
			if n > len(recs)*2 {
				t.Fatalf("corrupt stream (byte %d) yields unbounded records", i)
			}
		}
		r.Close()
	}
}

func TestTBINSkipBlock(t *testing.T) {
	recs := genRecords(10000, 37) // > 2 blocks at 4096 records/block
	var buf bytes.Buffer
	w := NewWriter(&buf, TBIN)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()), TBIN)
	defer r.Close()
	skipped, err := r.SkipBlock()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != tbinBlockRecords {
		t.Fatalf("skipped %d records, want %d", skipped, tbinBlockRecords)
	}
	rest, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(recs)-skipped {
		t.Fatalf("read %d after skip, want %d", len(rest), len(recs)-skipped)
	}
	for i := range rest {
		if rest[i] != recs[skipped+i] {
			t.Fatalf("record %d after skip mismatches", i)
		}
	}

	// Skipping every block visits the whole stream.
	r2 := NewReader(bytes.NewReader(buf.Bytes()), TBIN)
	defer r2.Close()
	total := 0
	for {
		n, err := r2.SkipBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != len(recs) {
		t.Fatalf("skip-walk saw %d records, want %d", total, len(recs))
	}
}

func TestTBINSkipBlockMidBlockFails(t *testing.T) {
	recs := genRecords(10, 41)
	var buf bytes.Buffer
	w := NewWriter(&buf, TBIN)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), TBIN)
	defer r.Close()
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SkipBlock(); err == nil {
		t.Fatal("mid-block skip allowed")
	}
}

func TestSkipBlockRequiresTBIN(t *testing.T) {
	r := NewReader(strings.NewReader(""), JSONL)
	if _, err := r.SkipBlock(); err == nil {
		t.Fatal("SkipBlock on JSONL allowed")
	}
}

func TestParseFormat(t *testing.T) {
	for _, f := range []Format{JSONL, CSV, TBIN} {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("protobuf"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
