package telemetry

import (
	"bytes"
	"io"
	"math"
	"testing"

	"autosens/internal/timeutil"
)

// FuzzRecordRoundTrip drives arbitrary records through every codec and
// requires the decoded record to match the input bit for bit.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(int64(0), 0, 312.5, uint64(42), 0, int64(-18000000), false)
	f.Add(int64(99999), 3, 45.25, uint64(1)<<60, 1, int64(3600000), true)
	f.Add(int64(-5), 1, 0.0, uint64(math.MaxUint64), 1, int64(math.MaxInt64), false)
	f.Add(int64(math.MinInt64), 2, 1e-9, uint64(0), 0, int64(0), true)
	f.Fuzz(func(t *testing.T, tm int64, action int, latency float64, user uint64, utype int, tz int64, failed bool) {
		rec := Record{
			Time:      timeutil.Millis(tm),
			Action:    ActionType(action),
			LatencyMS: latency,
			UserID:    user,
			UserType:  UserType(utype),
			TZOffset:  timeutil.Millis(tz),
			Failed:    failed,
		}
		if rec.Validate() != nil {
			return // writers reject invalid records; nothing to round-trip
		}
		for _, format := range []Format{JSONL, CSV, TBIN} {
			var buf bytes.Buffer
			w := NewWriter(&buf, format)
			err := w.Write(rec)
			if format == JSONL && (math.IsNaN(latency) || math.IsInf(latency, 0)) {
				if err == nil {
					t.Fatalf("%v: non-finite latency encoded", format)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%v: write: %v", format, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("%v: close: %v", format, err)
			}
			r := NewReader(bytes.NewReader(buf.Bytes()), format)
			got, err := r.Read()
			if err != nil {
				t.Fatalf("%v: read back %q: %v", format, buf.Bytes(), err)
			}
			if _, err := r.Read(); err != io.EOF {
				t.Fatalf("%v: trailing data after one record: %v", format, err)
			}
			r.Close()
			// Compare latency by bits so NaN (TBIN-only) round-trips count
			// as equal.
			a, b := got, rec
			if math.Float64bits(a.LatencyMS) != math.Float64bits(b.LatencyMS) {
				t.Fatalf("%v: latency %v -> %v", format, rec.LatencyMS, got.LatencyMS)
			}
			a.LatencyMS, b.LatencyMS = 0, 0
			if a != b {
				t.Fatalf("%v: round trip %+v -> %+v", format, rec, got)
			}
		}
	})
}

// FuzzReaderNoCrash feeds arbitrary bytes to every Reader and requires
// termination without panics: malformed input must never take down the
// collector. The fast JSONL path additionally must agree with
// encoding/json whenever it claims success.
func FuzzReaderNoCrash(f *testing.F) {
	f.Add([]byte(`{"t":1,"a":0,"l":5,"u":1,"ut":0,"tz":0}` + "\n"))
	f.Add([]byte("time_ms,action,latency_ms,user_id,user_type,tz_offset_ms,failed\n1,SelectMail,5,1,business,0,false\n"))
	f.Add([]byte(tbinMagic))
	f.Add([]byte(tbinMagic + "\x01\x03\x00ab"))
	f.Add([]byte("{\"t\":"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, format := range []Format{JSONL, CSV, TBIN} {
			r := NewReader(bytes.NewReader(data), format)
			for reads := 0; ; reads++ {
				_, err := r.Read()
				if err != nil {
					break
				}
				if reads > len(data)+1 {
					t.Fatalf("%v: more records than input bytes", format)
				}
			}
			r.Close()
		}
	})
}
