package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"unsafe"

	"autosens/internal/timeutil"
)

// This file is the JSONL hot path: a hand-rolled encoder and decoder for
// the exact object shape Record marshals to, so steady-state ingest never
// touches encoding/json. The encoder is byte-identical to json.Marshal
// (same field order, float formatting, and omitempty handling); the decoder
// accepts any key order but bails out to encoding/json on anything it does
// not recognize — escapes, whitespace, unknown keys, exotic numbers — so
// correctness never depends on the fast path's coverage.

// AppendRecordJSON appends the JSON encoding of r to dst and returns the
// extended slice. The bytes produced are identical to json.Marshal(r).
// The only error is a non-finite latency, which JSON cannot represent.
func AppendRecordJSON(dst []byte, r Record) ([]byte, error) {
	if math.IsNaN(r.LatencyMS) || math.IsInf(r.LatencyMS, 0) {
		return dst, fmt.Errorf("telemetry: unsupported latency value %v", r.LatencyMS)
	}
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, int64(r.Time), 10)
	dst = append(dst, `,"a":`...)
	dst = strconv.AppendInt(dst, int64(r.Action), 10)
	dst = append(dst, `,"l":`...)
	dst = appendJSONFloat(dst, r.LatencyMS)
	dst = append(dst, `,"u":`...)
	dst = strconv.AppendUint(dst, r.UserID, 10)
	dst = append(dst, `,"ut":`...)
	dst = strconv.AppendInt(dst, int64(r.UserType), 10)
	dst = append(dst, `,"tz":`...)
	dst = strconv.AppendInt(dst, int64(r.TZOffset), 10)
	if r.Failed {
		dst = append(dst, `,"f":true`...)
	}
	return append(dst, '}'), nil
}

// appendJSONFloat formats f the way encoding/json does: shortest 'f' form,
// switching to 'e' outside [1e-6, 1e21) and trimming a leading zero from
// two-digit negative exponents ("2e-07" -> "2e-7").
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// parseRecordFast decodes one JSONL line without allocating. It handles
// the flat object shape AppendRecordJSON emits — known keys, primitive
// values, no interior whitespace — in any key order. ok=false means the
// line needs the encoding/json fallback, not that it is invalid.
func parseRecordFast(line []byte) (rec Record, ok bool) {
	n := len(line)
	if n < 2 || line[0] != '{' || line[n-1] != '}' {
		return rec, false
	}
	i := 1
	if n == 2 {
		return rec, true // "{}": all fields keep their zero values
	}
	for {
		if i >= n || line[i] != '"' {
			return rec, false
		}
		i++
		ks := i
		for i < n && line[i] != '"' {
			if line[i] == '\\' {
				return rec, false
			}
			i++
		}
		if i >= n-1 {
			return rec, false
		}
		key := line[ks:i]
		i++
		if line[i] != ':' {
			return rec, false
		}
		i++
		vs := i
		for i < n && line[i] != ',' && line[i] != '}' {
			switch line[i] {
			case '"', '{', '[', ' ', '\t':
				return rec, false
			}
			i++
		}
		if i >= n {
			return rec, false
		}
		val := line[vs:i]
		if len(val) == 0 {
			return rec, false
		}
		switch string(key) { // the compiler avoids allocating for this conversion
		case "t":
			v, ok := parseJSONInt(val)
			if !ok {
				return rec, false
			}
			rec.Time = timeutil.Millis(v)
		case "a":
			v, ok := parseJSONInt(val)
			if !ok {
				return rec, false
			}
			rec.Action = ActionType(v)
		case "l":
			v, ok := parseJSONFloat(val)
			if !ok {
				return rec, false
			}
			rec.LatencyMS = v
		case "u":
			v, ok := parseJSONUint(val)
			if !ok {
				return rec, false
			}
			rec.UserID = v
		case "ut":
			v, ok := parseJSONInt(val)
			if !ok {
				return rec, false
			}
			rec.UserType = UserType(v)
		case "tz":
			v, ok := parseJSONInt(val)
			if !ok {
				return rec, false
			}
			rec.TZOffset = timeutil.Millis(v)
		case "f":
			switch string(val) {
			case "true":
				rec.Failed = true
			case "false":
				rec.Failed = false
			default:
				return rec, false
			}
		default:
			return rec, false
		}
		if line[i] == '}' {
			// Anything after the closing brace (other than nothing) is not
			// the shape we recognize.
			return rec, i == n-1
		}
		i++ // consume ','
	}
}

// parseJSONInt parses a strict JSON integer (optional '-', no leading
// zeros, no fraction or exponent). Overflow reports !ok so the stdlib
// fallback produces the canonical error.
func parseJSONInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	u, ok := parseJSONUint(b)
	if !ok {
		return 0, false
	}
	if neg {
		if u > 1<<63 {
			return 0, false
		}
		return -int64(u), true
	}
	if u > 1<<63-1 {
		return 0, false
	}
	return int64(u), true
}

// parseJSONUint parses a strict JSON non-negative integer.
func parseJSONUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	if b[0] == '0' && len(b) > 1 {
		return 0, false // leading zeros are not valid JSON
	}
	var u uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if u > (math.MaxUint64-d)/10 {
			return 0, false
		}
		u = u*10 + d
	}
	return u, true
}

// parseJSONFloat parses a JSON number into a float64 without allocating.
// The shape is validated against the JSON grammar first (so "+1", "01" and
// hex floats never sneak through), then handed to strconv via a no-copy
// string view. Out-of-range values report !ok and fall back to the stdlib
// for its canonical error.
func parseJSONFloat(b []byte) (float64, bool) {
	if !validJSONNumber(b) {
		return 0, false
	}
	v, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(b), len(b)), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// validJSONNumber reports whether b matches the RFC 8259 number grammar.
func validJSONNumber(b []byte) bool {
	i, n := 0, len(b)
	if i < n && b[i] == '-' {
		i++
	}
	switch {
	case i < n && b[i] == '0':
		i++
	case i < n && b[i] >= '1' && b[i] <= '9':
		for i < n && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < n && b[i] == '.' {
		i++
		if i >= n || b[i] < '0' || b[i] > '9' {
			return false
		}
		for i < n && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < n && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < n && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= n || b[i] < '0' || b[i] > '9' {
			return false
		}
		for i < n && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	return i == n
}
