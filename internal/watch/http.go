package watch

import (
	"encoding/json"
	"net/http"

	"autosens/internal/collector/api"
)

// AlertsHandler serves GET /v1/alerts per the v1 contract:
//
//	GET /v1/alerts?state=firing
//
// state filters to one lifecycle state; omitted, every retained alert is
// listed. Errors use the collector's typed schema.
func (w *Watcher) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			api.WriteError(rw, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				"GET this endpoint", 0)
			return
		}
		state := r.URL.Query().Get("state")
		switch state {
		case "", api.AlertPending, api.AlertFiring, api.AlertResolved:
		default:
			api.WriteError(rw, http.StatusBadRequest, api.CodeBadRequest,
				"state must be pending, firing or resolved", 0)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(w.Alerts(state))
	})
}

// ReportHandler serves GET /v1/report:
//
//	GET /v1/report?format=html
//
// format is json (default), html, or text.
func (w *Watcher) ReportHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			api.WriteError(rw, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				"GET this endpoint", 0)
			return
		}
		rep := w.Report()
		switch r.URL.Query().Get("format") {
		case "", "json":
			body, err := rep.MarshalJSON()
			if err != nil {
				api.WriteError(rw, http.StatusInternalServerError, api.CodeEstimateFailed,
					err.Error(), 0)
				return
			}
			rw.Header().Set("Content-Type", "application/json")
			_, _ = rw.Write(body)
		case "html":
			rw.Header().Set("Content-Type", "text/html; charset=utf-8")
			_ = rep.RenderHTML(rw)
		case "text":
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = rep.RenderText(rw)
		default:
			api.WriteError(rw, http.StatusBadRequest, api.CodeBadRequest,
				"format must be json, html or text", 0)
		}
	})
}
