package watch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// writeArtifactsLocked refreshes the on-disk ops artifacts after a tick:
// alerts.json (the /v1/alerts body), report.json and report.html (the
// /v1/report bodies). Each file is written to a temp name and renamed, so
// a reader never sees a torn artifact. Caller holds w.mu.
func (w *Watcher) writeArtifactsLocked() error {
	dir := w.cfg.ArtifactsDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	alerts, err := json.MarshalIndent(w.Alerts(""), "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "alerts.json"), alerts); err != nil {
		return err
	}
	rep := w.reportLocked()
	body, err := rep.MarshalJSON()
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "report.json"), body); err != nil {
		return err
	}
	return writeAtomicFunc(filepath.Join(dir, "report.html"), rep.RenderHTML)
}

// writeAtomic writes data via a temp file + rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("watch: publish %s: %w", path, err)
	}
	return nil
}

// writeAtomicFunc streams render output through a temp file + rename.
func writeAtomicFunc(path string, render func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("watch: publish %s: %w", path, err)
	}
	return nil
}
