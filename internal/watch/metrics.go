package watch

import "autosens/internal/obs"

// metrics bundles the autosens_watch_* and autosens_alert_* instruments.
type metrics struct {
	ticks     *obs.Counter
	tickDur   *obs.Histogram
	raised    *obs.Counter
	fired     *obs.Counter
	resolvedC *obs.Counter
}

func newMetrics(reg *obs.Registry, w *Watcher) *metrics {
	m := &metrics{
		ticks: reg.Counter("autosens_watch_ticks_total", "watcher evaluation ticks"),
		tickDur: reg.Histogram("autosens_watch_tick_duration_seconds",
			"wall-clock time of one watcher tick", obs.DefLatencyBuckets()),
		raised: reg.Counter("autosens_alert_raised_total",
			"alerts raised (pending cycles started, including reopens)"),
		fired: reg.Counter("autosens_alert_fired_total",
			"alert transitions to firing"),
		resolvedC: reg.Counter("autosens_alert_resolved_total",
			"alert transitions to resolved"),
	}
	// Recompute/skip counters live on the watcher (atomics) so tests can pin
	// "a tick over an unchanged store recomputes nothing" without a registry;
	// the gauges mirror them for scraping.
	reg.GaugeFunc("autosens_watch_slice_recomputes_total", "slices re-evaluated by a tick",
		func() float64 { return float64(w.recomputes.Load()) })
	reg.GaugeFunc("autosens_watch_slice_skips_total", "slices skipped on unchanged version",
		func() float64 { return float64(w.skips.Load()) })
	reg.GaugeFunc("autosens_watch_slices", "slices watched",
		func() float64 { return float64(len(w.slices)) })
	reg.GaugeFunc("autosens_alerts_pending", "alerts currently pending",
		func() float64 { p, _, _ := w.store.counts(); return float64(p) })
	reg.GaugeFunc("autosens_alerts_firing", "alerts currently firing",
		func() float64 { _, f, _ := w.store.counts(); return float64(f) })
	reg.GaugeFunc("autosens_alerts_resolved", "resolved alerts retained",
		func() float64 { _, _, r := w.store.counts(); return float64(r) })
	return m
}
