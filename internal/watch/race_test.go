package watch

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"autosens/internal/timeutil"
)

// TestConcurrentIngestTickAndServe exercises the watcher's full concurrent
// surface under -race: beacons streaming into the engine, ticks running on
// their own goroutine, and HTTP clients polling /v1/alerts, /v1/report and
// Stats the whole time. Correctness here is "no race, no panic, and every
// response decodes" — the deterministic behavior is pinned elsewhere.
func TestConcurrentIngestTickAndServe(t *testing.T) {
	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)

	users := distinctShardUsers(8, 16)
	recs := synthStream(11, users, 2*timeutil.MillisPerDay,
		func(u uint64, tm timeutil.Millis) float64 { return 300 },
		func(u uint64, tm timeutil.Millis) float64 { return 0.5 })

	mux := http.NewServeMux()
	mux.Handle("/v1/alerts", w.AlertsHandler())
	mux.Handle("/v1/report", w.ReportHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const chunks = 20
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < chunks; i++ {
			lo := i * len(recs) / chunks
			hi := (i + 1) * len(recs) / chunks
			if hi > lo {
				e.Append(recs[lo:hi])
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < chunks; i++ {
			w.Tick()
		}
	}()

	for _, url := range []string{
		srv.URL + "/v1/alerts",
		srv.URL + "/v1/alerts?state=firing",
		srv.URL + "/v1/report",
		srv.URL + "/v1/report?format=html",
	} {
		url := url
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || len(body) == 0 {
					t.Errorf("GET %s: status %d err %v len %d", url, resp.StatusCode, err, len(body))
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = w.Stats()
			_ = w.Report()
		}
	}()

	wg.Wait()

	// One final tick over the now-quiescent store must settle into the
	// cached path regardless of how the races interleaved.
	w.Tick()
	res := w.Tick()
	if res.Recomputed != 0 {
		t.Errorf("tick after quiescence recomputed %d slices, want 0", res.Recomputed)
	}
}
