package watch

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autosens/internal/collector/api"
	"autosens/internal/core"
	"autosens/internal/live"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// synthStream generates a deterministic multi-user beacon stream: each
// user emits records on a Poisson clock whose rate and latency are
// functions of time, so tests plant regressions and preference changes
// with exact boundaries. Records come out time-sorted.
func synthStream(seed uint64, users []uint64, horizon timeutil.Millis,
	lat func(user uint64, t timeutil.Millis) float64,
	ratePerMin func(user uint64, t timeutil.Millis) float64) []telemetry.Record {
	var out []telemetry.Record
	for _, u := range users {
		src := rng.NewStream(seed, u)
		for m := timeutil.Millis(0); m < horizon; m += timeutil.MillisPerMinute {
			n := src.Poisson(ratePerMin(u, m))
			for i := 0; i < n; i++ {
				tm := m + timeutil.Millis(src.Intn(int(timeutil.MillisPerMinute)))
				out = append(out, telemetry.Record{
					Time:      tm,
					Action:    telemetry.SelectMail,
					LatencyMS: lat(u, tm) * src.LogNormal(0, 0.05),
					UserID:    u,
					UserType:  telemetry.Business,
				})
			}
		}
	}
	telemetry.SortByTime(out)
	return out
}

// distinctShardUsers picks user IDs mapping to distinct engine shards
// (the engine shards by rng.Mix64(id) % shards), so per-shard assertions
// are exact.
func distinctShardUsers(n, shards int) []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for id := uint64(1); len(out) < n; id++ {
		s := rng.Mix64(id) % uint64(shards)
		if !seen[s] {
			seen[s] = true
			out = append(out, id)
		}
	}
	return out
}

func newTestEngine(t *testing.T) *live.Engine {
	t.Helper()
	e, err := live.New(live.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// testIncidentConfig judges 2h recents against a 12h baseline so the
// synthetic streams stay small.
func testIncidentConfig() IncidentConfig {
	return IncidentConfig{
		Window:          2 * timeutil.MillisPerHour,
		Baseline:        12 * timeutil.MillisPerHour,
		Factor:          1.6,
		MinShardRecords: 30,
	}
}

func newTestWatcher(t *testing.T, e *live.Engine, mut func(*Config)) *Watcher {
	t.Helper()
	cfg := Config{
		Engine: e,
		Drift: DriftConfig{Rolling: core.RollingOptions{
			Window:     timeutil.MillisPerDay,
			Step:       6 * timeutil.MillisPerHour,
			Probes:     []float64{800},
			MinRecords: 300,
		}},
		Incident:     testIncidentConfig(),
		FiringTicks:  2,
		ResolveTicks: 3,
	}
	if mut != nil {
		mut(&cfg)
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func alertsOfType(w *Watcher, typ string) []api.Alert {
	var out []api.Alert
	for _, a := range w.Alerts("").Alerts {
		if a.Type == typ {
			out = append(out, a)
		}
	}
	return out
}

func TestAlertLifecycle(t *testing.T) {
	st := newAlertStore(2, 2, 3)
	c := condition{id: "x", typ: api.AlertNLPDrift, slice: "all",
		severity: api.SeverityWarning, value: 0.3, threshold: 0.1, dataTime: 1000}

	if n := st.apply(1, []condition{c}); n != 0 {
		t.Fatalf("fired on first observation with firingTicks=2: %d", n)
	}
	if p, f, _ := st.counts(); p != 1 || f != 0 {
		t.Fatalf("after tick 1: pending=%d firing=%d", p, f)
	}
	if n := st.apply(2, []condition{c}); n != 1 {
		t.Fatalf("second consecutive observation should fire: %d", n)
	}
	a := st.list("")[0]
	if a.State != api.AlertFiring || a.FirstSeenTick != 1 || a.FiringTick != 2 {
		t.Fatalf("firing alert: %+v", a)
	}

	// Severity escalates, never downgrades mid-cycle.
	crit := c
	crit.severity = api.SeverityCritical
	st.apply(3, []condition{crit})
	st.apply(4, []condition{c})
	if a := st.list("")[0]; a.Severity != api.SeverityCritical {
		t.Fatalf("severity downgraded: %+v", a)
	}

	// One condition-free tick is not enough to resolve (resolveTicks=2)...
	st.apply(5, nil)
	if _, f, _ := st.counts(); f != 1 {
		t.Fatal("resolved after one missed tick")
	}
	// ...two are.
	st.apply(6, nil)
	if _, f, r := st.counts(); f != 0 || r != 1 {
		t.Fatalf("not resolved after two missed ticks: firing=%d resolved=%d", f, r)
	}
	if a := st.list("")[0]; a.ResolvedTick != 6 {
		t.Fatalf("resolved tick: %+v", a)
	}

	// The condition returning reopens the SAME alert (one dedupe key).
	st.apply(7, []condition{c})
	all := st.list("")
	if len(all) != 1 || all[0].State != api.AlertPending {
		t.Fatalf("reopen: %+v", all)
	}
	raised, fired, resolved := st.transitions()
	if raised != 2 || fired != 1 || resolved != 1 {
		t.Fatalf("transitions: raised=%d fired=%d resolved=%d", raised, fired, resolved)
	}

	// Resolved alerts are retained for retentionTicks, then GC'd.
	st.apply(8, nil)
	st.apply(9, nil) // resolves at 9
	for tick := uint64(10); tick <= 13; tick++ {
		st.apply(tick, nil)
	}
	if n := len(st.list("")); n != 0 {
		t.Fatalf("resolved alert survived retention: %d", n)
	}
}

// A fleet-wide latency regression must collapse into exactly ONE firing
// correlated-incident alert — not one per shard, not one per tick.
func TestFleetIncidentCollapsesToOneAlert(t *testing.T) {
	users := distinctShardUsers(12, live.DefaultShards)
	horizon := 24 * timeutil.MillisPerHour
	incidentStart := horizon - 2*timeutil.MillisPerHour
	lat := func(_ uint64, tm timeutil.Millis) float64 {
		if tm >= incidentStart {
			return 900 // 3x regression, all users
		}
		return 300
	}
	rate := func(uint64, timeutil.Millis) float64 { return 1.5 }

	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)
	e.Append(synthStream(81, users, horizon, lat, rate))

	w.Tick()
	e.Append(synthStream(82, users, horizon, lat, rate)) // more incident data
	w.Tick()

	fleet := alertsOfType(w, api.AlertLatencyIncident)
	if len(fleet) != 1 {
		t.Fatalf("%d correlated incident alerts, want exactly 1: %+v", len(fleet), fleet)
	}
	if fleet[0].State != api.AlertFiring {
		t.Fatalf("incident alert not firing: %+v", fleet[0])
	}
	if shard := alertsOfType(w, api.AlertShardLatency); len(shard) != 0 {
		t.Fatalf("fleet regression also raised %d per-shard alerts: %+v", len(shard), shard)
	}

	// More ticks with the condition still present: still one alert.
	w.Tick()
	w.Tick()
	if fleet := alertsOfType(w, api.AlertLatencyIncident); len(fleet) != 1 {
		t.Fatalf("alert count grew across ticks: %d", len(fleet))
	}
}

// An isolated single-shard regression must stay shard-scoped.
func TestIsolatedShardRegressionStaysShardScoped(t *testing.T) {
	users := distinctShardUsers(10, live.DefaultShards)
	slow := users[3]
	horizon := 24 * timeutil.MillisPerHour
	incidentStart := horizon - 2*timeutil.MillisPerHour
	lat := func(u uint64, tm timeutil.Millis) float64 {
		if u == slow && tm >= incidentStart {
			return 1200
		}
		return 300
	}
	rate := func(uint64, timeutil.Millis) float64 { return 1.5 }

	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)
	e.Append(synthStream(83, users, horizon, lat, rate))
	w.Tick()
	w.Tick()

	if fleet := alertsOfType(w, api.AlertLatencyIncident); len(fleet) != 0 {
		t.Fatalf("isolated regression promoted to fleet incident: %+v", fleet)
	}
	shard := alertsOfType(w, api.AlertShardLatency)
	if len(shard) != 1 {
		t.Fatalf("%d shard alerts, want 1: %+v", len(shard), shard)
	}
	if shard[0].Value < 2 {
		t.Fatalf("shard ratio %v, want ~4x", shard[0].Value)
	}
}

// A planted sensitivity change must raise an NLP drift alert whose
// deviation clears the CI-aware threshold.
func TestDriftDetection(t *testing.T) {
	users := distinctShardUsers(8, live.DefaultShards)
	horizon := 8 * timeutil.MillisPerDay
	change := 6 * timeutil.MillisPerDay
	slowPeriod := func(tm timeutil.Millis) bool {
		return (tm/(2*timeutil.MillisPerHour))%2 == 1
	}
	lat := func(_ uint64, tm timeutil.Millis) float64 {
		if slowPeriod(tm) {
			return 800
		}
		return 300
	}
	// Before the change point users ignore latency; after it they act at
	// half rate in slow periods — measured NLP(800) steps from ~1 to ~0.5.
	rate := func(_ uint64, tm timeutil.Millis) float64 {
		if slowPeriod(tm) && tm >= change {
			return 0.6
		}
		return 1.2
	}

	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)
	// Two appends: the lifecycle only advances on ticks that saw new data.
	stream := synthStream(84, users, horizon, lat, rate)
	split := len(stream) - len(stream)/50
	e.Append(stream[:split])
	w.Tick()
	e.Append(stream[split:])
	w.Tick()

	drift := alertsOfType(w, api.AlertNLPDrift)
	if len(drift) != 1 {
		t.Fatalf("%d drift alerts, want 1: %+v", len(drift), drift)
	}
	a := drift[0]
	if a.State != api.AlertFiring {
		t.Fatalf("drift alert not firing: %+v", a)
	}
	if a.ID != "nlp_drift:all:p800" {
		t.Fatalf("dedupe key: %q", a.ID)
	}
	if a.Value > -0.2 {
		t.Fatalf("deviation %v, want strongly negative", a.Value)
	}
	if math.Abs(a.Value) <= a.Threshold {
		t.Fatalf("alert below its own threshold: %+v", a)
	}
	if a.Severity != api.SeverityCritical {
		t.Fatalf("a 0.5 NLP step should be critical: %+v", a)
	}
}

// A stable stream must stay silent. The fast/slow alternation is finer
// than the incident detector's recent window, so recent and baseline see
// the same latency mix — periodic structure is not a regression.
func TestStableStreamRaisesNothing(t *testing.T) {
	users := distinctShardUsers(8, live.DefaultShards)
	horizon := 8 * timeutil.MillisPerDay
	slowPeriod := func(tm timeutil.Millis) bool {
		return (tm/(30*timeutil.MillisPerMinute))%2 == 1
	}
	lat := func(_ uint64, tm timeutil.Millis) float64 {
		if slowPeriod(tm) {
			return 800
		}
		return 300
	}
	rate := func(_ uint64, tm timeutil.Millis) float64 {
		if slowPeriod(tm) {
			return 0.6 // constant preference from the start: no drift
		}
		return 1.2
	}
	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)
	e.Append(synthStream(85, users, horizon, lat, rate))
	for i := 0; i < 4; i++ {
		w.Tick()
	}
	if st := w.Stats(); st.AlertsRaised != 0 {
		t.Fatalf("stable stream raised %d alerts: %+v", st.AlertsRaised, w.Alerts("").Alerts)
	}
}

// A tick over an unchanged store must do no curve recomputation — pinned
// by the watcher's own counters and the engine's epoch.
func TestCleanTickRecomputesNothing(t *testing.T) {
	users := distinctShardUsers(6, live.DefaultShards)
	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)
	e.Append(synthStream(86, users, 26*timeutil.MillisPerHour,
		func(uint64, timeutil.Millis) float64 { return 300 },
		func(uint64, timeutil.Millis) float64 { return 1 }))

	first := w.Tick()
	if first.Recomputed == 0 {
		t.Fatal("first tick recomputed nothing")
	}
	recomputes := w.Stats().Recomputes
	epoch := e.Epoch()

	for i := 0; i < 3; i++ {
		res := w.Tick()
		if res.Recomputed != 0 {
			t.Fatalf("clean tick recomputed %d slices", res.Recomputed)
		}
		if res.Skipped == 0 {
			t.Fatal("clean tick skipped nothing")
		}
	}
	st := w.Stats()
	if st.Recomputes != recomputes {
		t.Fatalf("recompute counter moved on clean ticks: %d -> %d", recomputes, st.Recomputes)
	}
	if st.Skips < 3 {
		t.Fatalf("skip counter %d, want >= 3", st.Skips)
	}
	if e.Epoch() != epoch {
		t.Fatalf("engine epoch moved: %d -> %d", epoch, e.Epoch())
	}

	// New data re-arms the recompute.
	e.Append(synthStream(87, users, 26*timeutil.MillisPerHour,
		func(uint64, timeutil.Millis) float64 { return 300 },
		func(uint64, timeutil.Millis) float64 { return 1 }))
	if res := w.Tick(); res.Recomputed == 0 {
		t.Fatal("dirty tick did not recompute")
	}
}

func TestAlertsHandler(t *testing.T) {
	users := distinctShardUsers(12, live.DefaultShards)
	horizon := 24 * timeutil.MillisPerHour
	lat := func(_ uint64, tm timeutil.Millis) float64 {
		if tm >= horizon-2*timeutil.MillisPerHour {
			return 900
		}
		return 300
	}
	e := newTestEngine(t)
	w := newTestWatcher(t, e, nil)
	stream := synthStream(88, users, horizon, lat,
		func(uint64, timeutil.Millis) float64 { return 1.5 })
	split := len(stream) - len(stream)/50
	e.Append(stream[:split])
	w.Tick()
	e.Append(stream[split:])
	w.Tick()

	srv := httptest.NewServer(w.AlertsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body api.AlertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Tick != 2 || body.Firing != 1 || len(body.Alerts) != 1 {
		t.Fatalf("body: %+v", body)
	}
	a := body.Alerts[0]
	if a.Type != api.AlertLatencyIncident || a.State != api.AlertFiring || a.ID == "" {
		t.Fatalf("alert: %+v", a)
	}
	if a.DataTime == 0 || a.FiringTick != 2 {
		t.Fatalf("alert lifecycle fields: %+v", a)
	}

	// state filter: no resolved alerts yet.
	resp2, err := http.Get(srv.URL + "?state=resolved")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var filtered api.AlertsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Alerts) != 0 || filtered.Firing != 1 {
		t.Fatalf("filtered body: %+v", filtered)
	}

	// Errors use the typed v1 schema.
	for _, tc := range []struct {
		method, query string
		status        int
		code          string
	}{
		{http.MethodPost, "", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{http.MethodGet, "?state=bogus", http.StatusBadRequest, api.CodeBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.query, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.query, resp.StatusCode, tc.status)
		}
		apiErr := api.ReadError(resp)
		resp.Body.Close()
		if apiErr.Code != tc.code {
			t.Fatalf("%s %s: code %q, want %q", tc.method, tc.query, apiErr.Code, tc.code)
		}
	}
}

func TestReportHandlerAndArtifacts(t *testing.T) {
	dir := t.TempDir()
	users := distinctShardUsers(8, live.DefaultShards)
	e := newTestEngine(t)
	w := newTestWatcher(t, e, func(c *Config) { c.ArtifactsDir = dir })
	// Bimodal latency so NLP at the 800ms probe is estimable.
	slowPeriod := func(tm timeutil.Millis) bool {
		return (tm/(30*timeutil.MillisPerMinute))%2 == 1
	}
	e.Append(synthStream(89, users, 3*timeutil.MillisPerDay,
		func(_ uint64, tm timeutil.Millis) float64 {
			if slowPeriod(tm) {
				return 800
			}
			return 300
		},
		func(_ uint64, tm timeutil.Millis) float64 {
			if slowPeriod(tm) {
				return 0.7
			}
			return 1.2
		}))
	w.Tick()

	srv := httptest.NewServer(w.ReportHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tick   uint64 `json:"tick"`
		Slices []struct {
			Slice string      `json:"slice"`
			NLP   [][]float64 `json:"nlp"`
		} `json:"slices"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tick != 1 || len(rep.Slices) != 1 || rep.Slices[0].Slice != "all" {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Slices[0].NLP) == 0 {
		t.Fatal("report has no rolling windows")
	}

	htmlResp, err := http.Get(srv.URL + "?format=html")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(htmlResp.Body)
	htmlResp.Body.Close()
	if htmlResp.Header.Get("Content-Type") != "text/html; charset=utf-8" {
		t.Fatalf("html content type %q", htmlResp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(page), "Slice all") || !strings.Contains(string(page), "<td>800</td>") {
		t.Fatalf("html page missing slice section:\n%s", page)
	}

	badResp, err := http.Get(srv.URL + "?format=pdf")
	if err != nil {
		t.Fatal(err)
	}
	apiErr := api.ReadError(badResp)
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("bad format: %d %v", badResp.StatusCode, apiErr)
	}

	// Artifacts landed on disk and are valid.
	for _, name := range []string{"alerts.json", "report.json", "report.html"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		if strings.HasSuffix(name, ".json") && !json.Valid(b) {
			t.Fatalf("artifact %s is not valid JSON", name)
		}
	}
}

func TestWatcherConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	e := newTestEngine(t)
	bad := []func(*Config){
		func(c *Config) { c.Interval = -1 },
		func(c *Config) { c.FiringTicks = -1 },
		func(c *Config) { c.Drift.MinDelta = -1 },
		func(c *Config) { c.Incident.Factor = 0.5 },
		func(c *Config) { c.Incident.CorrelatedFraction = 1.5 },
	}
	for i, mut := range bad {
		cfg := Config{Engine: e}
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	// The all-records slice is always watched for incidents even when the
	// configured slice set omits it.
	w, err := New(Config{Engine: e, Slices: []live.SliceKey{
		{Action: telemetry.Search, UserType: -1, Period: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Slices != 2 {
		t.Fatalf("watched slices %d, want 2 (configured + all)", st.Slices)
	}
}
