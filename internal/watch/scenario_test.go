package watch

import (
	"testing"

	"autosens/internal/collector/api"
	"autosens/internal/live"
	"autosens/internal/owasim"
	"autosens/internal/timeutil"
)

// The ground-truth harness: owasim runs with scheduled regimes the
// simulator knows about, the watcher sees only the resulting beacon
// stream, and the test scores fired alerts against the schedule. The
// clean scenarios double as the zero-false-positive soak.
func calmConfig(seed uint64, regimes *owasim.RegimeSchedule) owasim.Config {
	cfg := owasim.DefaultConfig(8*timeutil.MillisPerDay, 50, 50)
	cfg.Seed = seed
	cfg.FailureRate = 0
	// Keep the latency model's OU wander amplitude: within-hour-slot
	// variation across days is the natural-experiment signal the estimator
	// identifies preference from. But shorten its correlation time
	// (rho 0.99 → 0.9 per 30 s step, sigma rescaled to preserve the
	// stationary variance): the default path wanders on hour-to-day
	// scales, and a day-long 2x excursion IS a real correlated latency
	// regression — it would rightly fire the incident detector and
	// falsify the schedule as ground truth. With a ~5-minute correlation
	// time the same variation arrives as blips that no 3 h median can
	// ride, so the schedule is the only sustained regime. The spontaneous
	// micro-incident process is disabled for the same reason. Perception
	// is oracle (EWMABeta 0): users respond to current conditions, so a
	// planted preference shift reaches the measured curves without the
	// perception-lag attenuation blurring an 8-day window.
	cfg.EWMABeta = 0
	cfg.Latency.OURho = 0.9
	cfg.Latency.OUSigma = 0.26
	cfg.Latency.IncidentUp = 0
	cfg.Regimes = regimes
	return cfg
}

// scenarioWatcher mirrors the production defaults except for shard-volume
// eligibility, which is lowered to match the simulated fleet's size.
func scenarioWatcher(t *testing.T, e *live.Engine) *Watcher {
	t.Helper()
	w, err := New(Config{
		Engine:       e,
		Incident:     IncidentConfig{MinShardRecords: 30},
		FiringTicks:  2,
		ResolveTicks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// replayChunked feeds the simulated stream to the engine in time chunks
// with a watcher tick after each — the batch analogue of the production
// loop. The first six days arrive daily; the final two days — where every
// scheduled regime lives — arrive in 2 h chunks, so a persisting condition
// is observed by several consecutive data-carrying ticks (the lifecycle
// only advances on ticks that saw new data) while a transient excursion
// is not.
func replayChunked(t *testing.T, cfg owasim.Config, w *Watcher, e *live.Engine) {
	t.Helper()
	res, err := owasim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []timeutil.Millis
	for d := timeutil.Millis(1); d <= 6; d++ {
		bounds = append(bounds, d*timeutil.MillisPerDay)
	}
	for h := 6*24 + 2; h <= 8*24; h += 2 {
		bounds = append(bounds, timeutil.Millis(h)*timeutil.MillisPerHour)
	}
	recs := res.Records
	i := 0
	for _, b := range bounds {
		j := i
		for j < len(recs) && recs[j].Time < b {
			j++
		}
		if j > i {
			e.Append(recs[i:j])
			i = j
		}
		w.Tick()
	}
	if i < len(recs) {
		e.Append(recs[i:])
		w.Tick()
	}
}

// firedTypes returns the scored alert types that ever reached firing.
// Shard-scoped warnings are diagnostic breadcrumbs, not incidents, and
// are deliberately out of scope for precision/recall.
func firedTypes(w *Watcher) map[string]bool {
	out := map[string]bool{}
	for _, a := range w.Alerts("").Alerts {
		if a.FiringTick == 0 {
			continue
		}
		if a.Type == api.AlertLatencyIncident || a.Type == api.AlertNLPDrift {
			out[a.Type] = true
		}
	}
	return out
}

// TestAlertQualityOnGroundTruth is the headline quality gate: over a mix
// of clean runs, fleet-wide latency incidents, sensitivity (preference)
// shifts and a sub-correlated partial incident, alert precision and
// recall against the simulator's schedule must both reach 0.9.
func TestAlertQualityOnGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("ground-truth replay is seconds-long; skipped with -short")
	}
	day := timeutil.MillisPerDay
	hour := timeutil.MillisPerHour
	fleetIncident := &owasim.RegimeSchedule{LatencyIncidents: []owasim.LatencyIncident{{
		Start: 7*day + 18*hour, End: 8 * day, Severity: 3, UserFraction: 1,
	}}}
	partialIncident := &owasim.RegimeSchedule{LatencyIncidents: []owasim.LatencyIncident{{
		Start: 7*day + 18*hour, End: 8 * day, Severity: 4, UserFraction: 0.15,
	}}}
	prefShift := &owasim.RegimeSchedule{PrefShifts: []owasim.PrefShift{{
		Start: 6 * day, End: 8 * day, GammaScale: 5,
	}}}

	scenarios := []struct {
		name    string
		seed    uint64
		regimes *owasim.RegimeSchedule
		expect  map[string]bool
	}{
		{"clean-a", 101, nil, map[string]bool{}},
		{"clean-b", 202, nil, map[string]bool{}},
		{"fleet-incident-a", 303, fleetIncident, map[string]bool{api.AlertLatencyIncident: true}},
		{"fleet-incident-b", 404, fleetIncident, map[string]bool{api.AlertLatencyIncident: true}},
		{"pref-shift-a", 505, prefShift, map[string]bool{api.AlertNLPDrift: true}},
		{"pref-shift-b", 606, prefShift, map[string]bool{api.AlertNLPDrift: true}},
		// A 15% incident must NOT be promoted to a fleet-wide alert: the
		// correlated fraction is not met, so at most shard warnings fire.
		{"partial-incident", 707, partialIncident, map[string]bool{}},
	}

	var tp, fp, fn int
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			e, err := live.New(live.Config{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			w := scenarioWatcher(t, e)
			replayChunked(t, calmConfig(sc.seed, sc.regimes), w, e)
			got := firedTypes(w)
			t.Logf("fired=%v expected=%v stats=%+v", got, sc.expect, w.Stats())
			for typ := range got {
				if sc.expect[typ] {
					tp++
				} else {
					fp++
					t.Errorf("false positive: %s fired", typ)
				}
			}
			for typ := range sc.expect {
				if !got[typ] {
					fn++
					t.Errorf("false negative: %s did not fire", typ)
				}
			}
			if sc.regimes == nil && len(got) != 0 {
				t.Errorf("clean soak fired scored alerts: %v", got)
			}
		})
	}
	precision, recall := 1.0, 1.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	t.Logf("ground truth: tp=%d fp=%d fn=%d precision=%.2f recall=%.2f",
		tp, fp, fn, precision, recall)
	if precision < 0.9 {
		t.Errorf("alert precision %.2f < 0.9", precision)
	}
	if recall < 0.9 {
		t.Errorf("alert recall %.2f < 0.9", recall)
	}
}
