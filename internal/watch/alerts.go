package watch

import (
	"sort"
	"sync"

	"autosens/internal/collector/api"
	"autosens/internal/timeutil"
)

// condition is one detector observation at one tick: "this slice's data
// currently shows this anomaly". Conditions are stateless — the store
// turns the per-tick stream of conditions into stateful alerts.
type condition struct {
	id        string // dedupe key; one alert per id however many ticks observe it
	typ       string // api.Alert* type constant
	slice     string
	severity  string
	message   string
	value     float64
	threshold float64
	dataTime  timeutil.Millis
}

// alert is one tracked alert plus its lifecycle bookkeeping.
type alert struct {
	api.Alert
	seenTicks   int // consecutive ticks the condition was observed
	missedTicks int // consecutive ticks it was not
}

// alertStore owns the alert set and the pending→firing→resolved
// lifecycle. All transitions happen in apply, once per watcher tick, so
// lifecycle history is deterministic in ticks regardless of wall clock.
type alertStore struct {
	// firingTicks is how many consecutive observed ticks promote pending
	// to firing (1 fires on first observation); resolveTicks how many
	// consecutive unobserved ticks resolve a pending or firing alert;
	// retentionTicks how long a resolved alert is retained before GC.
	firingTicks    int
	resolveTicks   int
	retentionTicks int

	mu     sync.Mutex
	alerts map[string]*alert

	// Monotone transition counters (read by stats with mu held elsewhere,
	// so plain ints under mu suffice).
	raised   uint64
	fired    uint64
	resolved uint64
}

func newAlertStore(firingTicks, resolveTicks, retentionTicks int) *alertStore {
	return &alertStore{
		firingTicks:    firingTicks,
		resolveTicks:   resolveTicks,
		retentionTicks: retentionTicks,
		alerts:         make(map[string]*alert),
	}
}

// severityRank orders severities for escalation.
func severityRank(s string) int {
	if s == api.SeverityCritical {
		return 1
	}
	return 0
}

// apply advances the lifecycle with one tick's worth of conditions.
// Returns how many alerts newly transitioned to firing this tick.
func (st *alertStore) apply(tick uint64, conds []condition) (newlyFiring int) {
	st.mu.Lock()
	defer st.mu.Unlock()

	seen := make(map[string]bool, len(conds))
	for _, c := range conds {
		seen[c.id] = true
		a, ok := st.alerts[c.id]
		if !ok || a.State == api.AlertResolved {
			if !ok {
				a = &alert{Alert: api.Alert{ID: c.id, FirstSeenTick: tick}}
				st.alerts[c.id] = a
			}
			// Fresh raise, or the same condition returning after a
			// resolve: either way a new pending cycle starts.
			a.State = api.AlertPending
			a.Severity = c.severity
			a.FiringTick, a.ResolvedTick = 0, 0
			a.seenTicks, a.missedTicks = 0, 0
			st.raised++
		}
		a.Type, a.Slice = c.typ, c.slice
		a.Value, a.Threshold = c.value, c.threshold
		a.Message = c.message
		a.DataTime = int64(c.dataTime)
		a.LastSeenTick = tick
		a.seenTicks++
		a.missedTicks = 0
		if severityRank(c.severity) > severityRank(a.Severity) {
			a.Severity = c.severity // escalate, never downgrade mid-cycle
		}
		if a.State == api.AlertPending && a.seenTicks >= st.firingTicks {
			a.State = api.AlertFiring
			a.FiringTick = tick
			st.fired++
			newlyFiring++
		}
	}

	for id, a := range st.alerts {
		if seen[id] {
			continue
		}
		switch a.State {
		case api.AlertPending, api.AlertFiring:
			a.seenTicks = 0
			a.missedTicks++
			if a.missedTicks >= st.resolveTicks {
				a.State = api.AlertResolved
				a.ResolvedTick = tick
				st.resolved++
			}
		case api.AlertResolved:
			if tick-a.ResolvedTick > uint64(st.retentionTicks) {
				delete(st.alerts, id)
			}
		}
	}
	return newlyFiring
}

// counts returns the per-state alert counts.
func (st *alertStore) counts() (pending, firing, resolved int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, a := range st.alerts {
		switch a.State {
		case api.AlertPending:
			pending++
		case api.AlertFiring:
			firing++
		case api.AlertResolved:
			resolved++
		}
	}
	return
}

// stateOrder sorts firing before pending before resolved.
func stateOrder(s string) int {
	switch s {
	case api.AlertFiring:
		return 0
	case api.AlertPending:
		return 1
	default:
		return 2
	}
}

// list snapshots the retained alerts: every alert when state is empty,
// else only those in that state. Sorted firing→pending→resolved, newest
// activity first within a state, ID as the final tiebreak so output is
// deterministic.
func (st *alertStore) list(state string) []api.Alert {
	st.mu.Lock()
	out := make([]api.Alert, 0, len(st.alerts))
	for _, a := range st.alerts {
		if state == "" || a.State == state {
			out = append(out, a.Alert)
		}
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if so := stateOrder(out[i].State) - stateOrder(out[j].State); so != 0 {
			return so < 0
		}
		if out[i].LastSeenTick != out[j].LastSeenTick {
			return out[i].LastSeenTick > out[j].LastSeenTick
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// transitions returns the monotone lifecycle counters.
func (st *alertStore) transitions() (raised, fired, resolved uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.raised, st.fired, st.resolved
}
