package watch

import (
	"testing"

	"autosens/internal/core"
	"autosens/internal/live"
	"autosens/internal/timeutil"
)

// benchEngine loads a 4-day, multi-shard stream once per benchmark.
func benchEngine(b *testing.B) *live.Engine {
	b.Helper()
	e, err := live.New(live.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	users := distinctShardUsers(12, 16)
	recs := synthStream(7, users, 4*timeutil.MillisPerDay,
		func(u uint64, tm timeutil.Millis) float64 { return 300 },
		func(u uint64, tm timeutil.Millis) float64 { return 0.5 })
	e.Append(recs)
	return e
}

func benchWatcherConfig(e *live.Engine) Config {
	return Config{
		Engine: e,
		Drift: DriftConfig{Rolling: core.RollingOptions{
			Window:     timeutil.MillisPerDay,
			Step:       6 * timeutil.MillisPerHour,
			Probes:     []float64{800},
			MinRecords: 300,
		}},
		Incident: testIncidentConfigB(),
	}
}

func testIncidentConfigB() IncidentConfig {
	return IncidentConfig{
		Window:          2 * timeutil.MillisPerHour,
		Baseline:        12 * timeutil.MillisPerHour,
		Factor:          1.6,
		MinShardRecords: 30,
	}
}

// BenchmarkWatchTickClean measures the steady-state tick over an unchanged
// store: a version poll per slice and a lifecycle freeze — the cost that
// makes a short watch interval affordable. Compare against
// BenchmarkWatchTickDirty: the gap is the incremental machinery's win.
func BenchmarkWatchTickClean(b *testing.B) {
	e := benchEngine(b)
	w, err := New(benchWatcherConfig(e))
	if err != nil {
		b.Fatal(err)
	}
	w.Tick() // warm: first tick recomputes and caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := w.Tick(); res.Recomputed != 0 {
			b.Fatalf("clean tick recomputed %d slices", res.Recomputed)
		}
	}
}

// BenchmarkWatchTickDirty measures a full re-evaluation tick: rolling
// NLP series plus drift and incident detection over the whole store, as
// after an append invalidated the slice.
func BenchmarkWatchTickDirty(b *testing.B) {
	e := benchEngine(b)
	cfg := benchWatcherConfig(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh watcher's first tick always recomputes; construction cost
		// is a few small allocations, dwarfed by the estimation work.
		w, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res := w.Tick(); res.Recomputed == 0 {
			b.Fatal("dirty tick recomputed nothing")
		}
	}
}
