// Package watch is sensd's continuous sensitivity-ops subsystem: a
// background watcher that periodically re-derives each watched slice's
// rolling NLP series from the live store, runs drift and correlated-
// incident detection over it, and maintains an alert lifecycle served at
// GET /v1/alerts and in the sensitivity report.
//
// # Incremental recomputation
//
// A tick polls each slice's ingest version (a handful of atomic loads)
// and skips the slice entirely when it hasn't moved — the detectors'
// inputs are a pure function of the stored records, so unchanged version
// ⇒ unchanged conditions, and the previous tick's conditions are replayed
// into the lifecycle instead of recomputed. Versions are stamped before a
// snapshot gathers its inputs and can only understate (the live engine's
// invariant), so a racing append at worst causes one extra recompute,
// never a missed one. A tick over a quiescent store therefore does no
// estimation work at all, which is what makes a short watch interval
// affordable.
//
// # Determinism
//
// Detection is anchored on data time (the newest record timestamp) and
// lifecycle history on tick numbers — never wall clock — so a replayed
// history scores identically however fast it is replayed, and ground-truth
// tests drive Tick directly.
package watch

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"autosens/internal/collector/api"
	"autosens/internal/core"
	"autosens/internal/live"
	"autosens/internal/obs"
	"autosens/internal/report"
	"autosens/internal/timeutil"
)

// Store is the slice read surface the watcher drives: estimator options
// (so derived series bin identically to served curves), the cheap
// per-tick staleness poll, and the snapshot itself. A single node's
// live.Engine implements it directly; a cluster.Coordinator implements
// it by scatter-gathering per-node partials, so one watcher can run
// drift and incident detection over cluster-wide slices.
type Store interface {
	Options() core.Options
	SliceVersion(key live.SliceKey) uint64
	SnapshotSlice(key live.SliceKey) (*live.SliceSnapshot, error)
	// SnapshotSliceWindow is SnapshotSlice restricted to a half-open time
	// window; a zero window must behave exactly like SnapshotSlice. With
	// Config.Window set, the watcher's ticks read through this so its
	// detectors judge a bounded trailing window against the store's
	// hot/cold cutover logic instead of full history.
	SnapshotSliceWindow(key live.SliceKey, win live.Window) (*live.SliceSnapshot, error)
}

// Config parameterizes a Watcher.
type Config struct {
	// Engine is the store to watch (required).
	Engine Store
	// Slices are the slices to run drift detection on (default: the
	// all-records slice). The all-records slice is always watched for
	// correlated incidents, whether or not it is listed.
	Slices []live.SliceKey
	// Interval is the Run loop's tick period (default 30s).
	Interval time.Duration
	// Window, when positive, bounds each tick's snapshot to a trailing
	// window of this length anchored on data time: the window ends
	// unbounded above (so records arriving "now" are never clipped) and
	// starts Window before the newest record time the previous tick saw.
	// Zero keeps the historical behavior of judging full history.
	Window time.Duration
	// Drift tunes the NLP drift detector; zero fields take defaults.
	Drift DriftConfig
	// Incident tunes the correlated-incident detector; zero fields take
	// defaults.
	Incident IncidentConfig
	// FiringTicks is how many consecutive ticks a condition must persist
	// before its pending alert fires (default 2).
	FiringTicks int
	// ResolveTicks is how many consecutive condition-free ticks resolve a
	// pending or firing alert (default 3).
	ResolveTicks int
	// RetentionTicks is how long a resolved alert stays listed (default 240).
	RetentionTicks int
	// ArtifactsDir, when set, receives alerts.json, report.json and
	// report.html after every tick (written atomically).
	ArtifactsDir string
	// Registry exports autosens_watch_* and autosens_alert_* metrics; nil
	// skips instrumentation.
	Registry *obs.Registry
	// Logger receives tick and transition logs; nil disables logging.
	Logger *slog.Logger
}

// sliceState is the watcher's per-slice memory between ticks.
type sliceState struct {
	key      live.SliceKey
	name     string
	drift    bool // run the drift detector on this slice
	incident bool // run the incident detector (all-records slice only)

	valid       bool   // a tick has judged this slice at least once
	lastVersion uint64 // slice version the cached state reflects
	conds       []condition
	series      *core.RollingSeries // last drift series, for the report
	records     int
	// lastMax is the newest record time the last snapshot held — the
	// trailing-window anchor when Config.Window is set. Anchoring on data
	// time keeps replayed histories deterministic (the package's
	// determinism rule), at the cost of one tick of lag in where the
	// window starts.
	lastMax timeutil.Millis
}

// Watcher periodically re-evaluates slices and maintains alerts.
type Watcher struct {
	cfg   Config
	est   *core.Estimator
	store *alertStore

	mu     sync.Mutex // serializes ticks and guards slice states
	slices []*sliceState

	ticks      atomic.Uint64
	recomputes atomic.Uint64
	skips      atomic.Uint64

	m *metrics
}

// New builds a Watcher. The engine is required; everything else defaults.
func New(cfg Config) (*Watcher, error) {
	if cfg.Engine == nil {
		return nil, errors.New("watch: nil engine")
	}
	if len(cfg.Slices) == 0 {
		cfg.Slices = []live.SliceKey{live.AllSlices}
	}
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Interval < 0 {
		return nil, errors.New("watch: negative interval")
	}
	cfg.Drift.setDefaults()
	cfg.Incident.setDefaults()
	if err := cfg.Drift.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Incident.validate(); err != nil {
		return nil, err
	}
	if cfg.FiringTicks == 0 {
		cfg.FiringTicks = 2
	}
	if cfg.ResolveTicks == 0 {
		cfg.ResolveTicks = 3
	}
	if cfg.RetentionTicks == 0 {
		cfg.RetentionTicks = 240
	}
	if cfg.FiringTicks < 1 || cfg.ResolveTicks < 1 || cfg.RetentionTicks < 1 {
		return nil, errors.New("watch: lifecycle tick counts must be positive")
	}

	// The watcher estimates under the engine's own options, so its rolling
	// windows and the engine's served curves agree bin for bin.
	est, err := core.NewEstimator(cfg.Engine.Options())
	if err != nil {
		return nil, err
	}

	w := &Watcher{cfg: cfg, est: est,
		store: newAlertStore(cfg.FiringTicks, cfg.ResolveTicks, cfg.RetentionTicks)}

	// One state per distinct slice; the all-records slice always exists and
	// is the one slice the correlated-incident detector runs on, so a
	// fleet-wide regression is exactly one condition no matter how the
	// watched slice set is configured.
	seen := make(map[live.SliceKey]*sliceState)
	for _, key := range cfg.Slices {
		if ss := seen[key]; ss != nil {
			continue
		}
		ss := &sliceState{key: key, name: key.String(), drift: true}
		seen[key] = ss
		w.slices = append(w.slices, ss)
	}
	all := seen[live.AllSlices]
	if all == nil {
		all = &sliceState{key: live.AllSlices, name: live.AllSlices.String()}
		w.slices = append(w.slices, all)
	}
	all.incident = true

	if cfg.Registry != nil {
		w.m = newMetrics(cfg.Registry, w)
	}
	return w, nil
}

// TickResult summarizes one tick.
type TickResult struct {
	// Tick is this tick's number (1-based).
	Tick uint64
	// Recomputed and Skipped count slices re-evaluated vs served from the
	// previous tick's cached conditions.
	Recomputed, Skipped int
	// Conditions is how many detector conditions this tick observed.
	Conditions int
	// NewlyFiring is how many alerts transitioned to firing this tick.
	NewlyFiring int
}

// Tick evaluates every watched slice once and advances the alert
// lifecycle. Safe for concurrent use with ingest and the HTTP handlers;
// concurrent Ticks serialize.
func (w *Watcher) Tick() TickResult {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()

	res := TickResult{Tick: w.ticks.Add(1)}
	var conds []condition
	for _, ss := range w.slices {
		v := w.cfg.Engine.SliceVersion(ss.key)
		if ss.valid && v == ss.lastVersion {
			// Unchanged data ⇒ unchanged conditions: replay, don't recompute.
			w.skips.Add(1)
			res.Skipped++
			conds = append(conds, ss.conds...)
			continue
		}
		var win live.Window
		if w.cfg.Window > 0 && ss.lastMax > 0 {
			from := ss.lastMax - timeutil.Millis(w.cfg.Window.Milliseconds())
			if from > 0 {
				win.From = from // To stays 0: unbounded above
			}
		}
		snap, err := w.cfg.Engine.SnapshotSliceWindow(ss.key, win)
		if err != nil {
			// Empty slice: nothing to judge. The version poll above still
			// notices the first matching append.
			ss.valid, ss.lastVersion = true, v
			ss.conds, ss.series, ss.records = nil, nil, 0
			continue
		}
		w.recomputes.Add(1)
		res.Recomputed++
		var cs []condition
		if ss.drift {
			dc, series := detectDrift(w.est, ss.name, snap, w.cfg.Drift)
			cs = append(cs, dc...)
			ss.series = series
		}
		if ss.incident {
			cs = append(cs, detectIncident(ss.name, snap, w.cfg.Incident)...)
		}
		ss.conds = cs
		ss.records = len(snap.Times)
		ss.valid, ss.lastVersion = true, snap.Version
		if n := len(snap.Times); n > 0 && snap.Times[n-1] > ss.lastMax {
			ss.lastMax = snap.Times[n-1]
		}
		conds = append(conds, cs...)
	}
	res.Conditions = len(conds)

	// A tick where every slice was served from cache saw no new data, so
	// it carries no evidence for OR against any alert: the lifecycle is
	// frozen, not advanced. Replaying cached conditions into the store
	// here would let a transient condition caught by the last real
	// recompute "confirm itself" into firing off stale data; equally,
	// counting the tick as a miss would resolve alerts that nothing
	// contradicted. Evidence only accrues with data.
	raised0, fired0, resolved0 := w.store.transitions()
	if res.Recomputed > 0 {
		res.NewlyFiring = w.store.apply(res.Tick, conds)
	}
	raised1, fired1, resolved1 := w.store.transitions()

	if w.m != nil {
		w.m.ticks.Inc()
		w.m.tickDur.ObserveSince(start)
		w.m.raised.Add(raised1 - raised0)
		w.m.fired.Add(fired1 - fired0)
		w.m.resolvedC.Add(resolved1 - resolved0)
	}
	if l := w.cfg.Logger; l != nil && (raised1 != raised0 || fired1 != fired0 || resolved1 != resolved0) {
		l.Info("alert transitions",
			"tick", res.Tick,
			"raised", raised1-raised0, "fired", fired1-fired0, "resolved", resolved1-resolved0,
			"conditions", res.Conditions)
	}
	if w.cfg.ArtifactsDir != "" {
		if err := w.writeArtifactsLocked(); err != nil && w.cfg.Logger != nil {
			w.cfg.Logger.Warn("artifact write failed", "err", err)
		}
	}
	return res
}

// Run ticks on the configured interval until ctx is canceled.
func (w *Watcher) Run(ctx context.Context) {
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Tick()
		}
	}
}

// Stats snapshots the watcher's operational counters for /v1/status.
func (w *Watcher) Stats() api.WatchStats {
	pending, firing, resolved := w.store.counts()
	raised, _, _ := w.store.transitions()
	w.mu.Lock()
	slices := len(w.slices)
	w.mu.Unlock()
	return api.WatchStats{
		Ticks:        w.ticks.Load(),
		Slices:       slices,
		Recomputes:   w.recomputes.Load(),
		Skips:        w.skips.Load(),
		AlertsRaised: raised,
		Pending:      pending,
		Firing:       firing,
		Resolved:     resolved,
	}
}

// Alerts snapshots the alert set in the v1 wire schema; state filters to
// one lifecycle state when non-empty.
func (w *Watcher) Alerts(state string) api.AlertsResponse {
	pending, firing, resolved := w.store.counts()
	return api.AlertsResponse{
		Tick:     w.ticks.Load(),
		Pending:  pending,
		Firing:   firing,
		Resolved: resolved,
		Alerts:   w.store.list(state),
	}
}

// Report assembles the sensitivity-ops report from the last tick's cached
// per-slice series and the current alert set.
func (w *Watcher) Report() *report.SensOpsReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reportLocked()
}

func (w *Watcher) reportLocked() *report.SensOpsReport {
	r := &report.SensOpsReport{Tick: w.ticks.Load()}
	for _, ss := range w.slices {
		if ss.series == nil {
			continue
		}
		s := report.SensSlice{
			Slice:   ss.name,
			Records: ss.records,
			Version: ss.lastVersion,
			Probes:  ss.series.Probes,
			Skipped: ss.series.Skipped,
		}
		for i, start := range ss.series.WindowStart {
			s.WindowStartHours = append(s.WindowStartHours,
				float64(start)/float64(timeutil.MillisPerHour))
			s.NLP = append(s.NLP, ss.series.NLP[i])
			s.WindowRecords = append(s.WindowRecords, ss.series.Records[i])
		}
		r.Slices = append(r.Slices, s)
	}
	for _, a := range w.store.list("") {
		r.Alerts = append(r.Alerts, report.AlertRow{
			ID: a.ID, Type: a.Type, Slice: a.Slice, Severity: a.Severity,
			State: a.State, Value: a.Value, Threshold: a.Threshold, Message: a.Message,
		})
	}
	return r
}

// String implements fmt.Stringer for logs.
func (w *Watcher) String() string {
	return fmt.Sprintf("watch.Watcher(%d slices, interval %s)", len(w.slices), w.cfg.Interval)
}
