// Drift and incident detection over live-store slice snapshots.
//
// Two detectors mirror the two regime kinds owasim can plant:
//
//   - NLP drift: the rolling-window sensitivity series (core.RollingColumns)
//     moved away from its own history. Benamara & Magnien (PAPERS.md) show
//     finite-window preference estimates carry bias that shrinks with sample
//     size, so the detection threshold is CI-aware: a floor plus a term that
//     widens as the effective sample behind the probe's latency bin shrinks.
//     A probe resting on thin tail data has to move much further than one in
//     the latency bulk to alert.
//
//   - Latency incident: per-user-shard recent-vs-baseline latency ratios.
//     Sharma et al. observe that real latency anomalies are frequently shared
//     across users, so when at least CorrelatedFraction of eligible shards
//     regress together the detector collapses them into ONE fleet-level
//     condition (one stable dedupe key) instead of a per-shard alert storm;
//     isolated regressions stay shard-scoped.
package watch

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"autosens/internal/collector/api"
	"autosens/internal/core"
	"autosens/internal/live"
	"autosens/internal/stats"
	"autosens/internal/timeutil"
)

// DriftConfig tunes the NLP drift detector.
type DriftConfig struct {
	// Rolling configures the sliding-window series the detector runs on.
	// Zero value selects DefaultDriftRolling().
	Rolling core.RollingOptions
	// BaselineWindows is the minimum number of estimated history windows
	// needed before detection starts (default 4).
	BaselineWindows int
	// RecentWindows is how many trailing windows must all deviate from the
	// baseline in the same direction to raise a condition (default 3 —
	// one outlier window never alerts). Their evidence is pooled: the
	// MEAN deviation is judged against a threshold whose error term
	// shrinks with the summed effective sample size.
	RecentWindows int
	// MinDelta is the floor on the mean NLP deviation (default 0.05);
	// smaller movements never alert no matter how tight the CI.
	MinDelta float64
	// Z scales the finite-window standard error added to MinDelta
	// (default 2). The threshold on the mean recent deviation is
	// MinDelta + Z * 0.5/sqrt(Σn), where Σn sums the effective sample
	// sizes behind the probe's bin over the recent windows
	// (core.RollingSeries.ProbeN) — a probe on the latency tail gets a
	// wider band than one in the bulk.
	Z float64
}

// DefaultDriftRolling returns the watcher's rolling options: daily windows
// sliding by 6 h — short enough to catch an operationally relevant shift
// within hours, long enough that a window holds a stable estimate. The
// windows are time-normalized (the paper's §2.4.1 α correction): raw
// per-window NLP absorbs diurnal and weekly activity structure into the
// estimate, which reads as spurious drift; the correction removes exactly
// that confound, so window-over-window movement reflects preference, not
// calendar.
func DefaultDriftRolling() core.RollingOptions {
	return core.RollingOptions{
		Window:         timeutil.MillisPerDay,
		Step:           6 * timeutil.MillisPerHour,
		Probes:         []float64{500, 1000},
		TimeNormalized: true,
		MinRecords:     500,
	}
}

func (c *DriftConfig) setDefaults() {
	if c.Rolling.Window == 0 && c.Rolling.Step == 0 && len(c.Rolling.Probes) == 0 {
		c.Rolling = DefaultDriftRolling()
	}
	if c.BaselineWindows == 0 {
		c.BaselineWindows = 4
	}
	if c.RecentWindows == 0 {
		c.RecentWindows = 3
	}
	if c.MinDelta == 0 {
		c.MinDelta = 0.05
	}
	if c.Z == 0 {
		c.Z = 2
	}
}

func (c DriftConfig) validate() error {
	if err := c.Rolling.Validate(); err != nil {
		return err
	}
	if c.BaselineWindows < 1 || c.RecentWindows < 1 {
		return fmt.Errorf("watch: baseline/recent window counts must be positive")
	}
	if c.MinDelta < 0 || c.Z < 0 {
		return fmt.Errorf("watch: negative drift threshold")
	}
	return nil
}

// driftSE is the finite-window standard-error proxy for an NLP value
// whose probe bin rests on an effective sample of n records: the
// conservative binomial half-width 0.5/√n.
func driftSE(n float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return 0.5 / math.Sqrt(n)
}

// detectDrift runs the rolling series over the slice's merged columns and
// compares the trailing windows against the median of the earlier ones.
// Returns nil when the series is too short or too thin to judge.
func detectDrift(est *core.Estimator, slice string, snap *live.SliceSnapshot, cfg DriftConfig) ([]condition, *core.RollingSeries) {
	series, err := est.RollingColumns(snap.Times, snap.Lats, cfg.Rolling)
	if err != nil {
		return nil, nil // thin or unusable data: nothing to judge yet
	}
	w := len(series.WindowStart)
	if w < cfg.BaselineWindows+cfg.RecentWindows {
		return nil, series
	}
	var conds []condition
	for j, probe := range series.Probes {
		base := make([]float64, 0, w-cfg.RecentWindows)
		for i := 0; i < w-cfg.RecentWindows; i++ {
			if v := series.NLP[i][j]; !math.IsNaN(v) {
				base = append(base, v)
			}
		}
		if len(base) < cfg.BaselineWindows {
			continue
		}
		baseline, err := stats.Median(base)
		if err != nil {
			continue
		}
		// Every trailing window must deviate in the same direction, and
		// their pooled mean must clear the CI-aware threshold. Pooling
		// trades a little detection latency for a much better-conditioned
		// statistic than any single window provides.
		sum, pooledN := 0.0, 0.0
		dir, ok := 0, true
		for i := w - cfg.RecentWindows; i < w; i++ {
			v := series.NLP[i][j]
			if math.IsNaN(v) {
				ok = false
				break
			}
			d := v - baseline
			s := 1
			if d < 0 {
				s = -1
			}
			if dir != 0 && s != dir {
				ok = false
				break
			}
			dir = s
			sum += d
			pooledN += series.ProbeN[i][j]
		}
		if !ok {
			continue
		}
		dev := sum / float64(cfg.RecentWindows)
		thr := cfg.MinDelta + cfg.Z*driftSE(pooledN)
		if math.Abs(dev) <= thr {
			continue
		}
		sev := api.SeverityWarning
		if math.Abs(dev) > 2*thr {
			sev = api.SeverityCritical
		}
		last := w - 1
		conds = append(conds, condition{
			id:        "nlp_drift:" + slice + ":p" + strconv.FormatFloat(probe, 'g', -1, 64),
			typ:       api.AlertNLPDrift,
			slice:     slice,
			severity:  sev,
			value:     dev,
			threshold: thr,
			dataTime:  series.WindowStart[last] + cfg.Rolling.Window,
			message: fmt.Sprintf("NLP@%gms drifted %+.3f from baseline %.3f (threshold %.3f, mean of %d windows)",
				probe, dev, baseline, thr, cfg.RecentWindows),
		})
	}
	return conds, series
}

// IncidentConfig tunes the correlated latency-incident detector.
type IncidentConfig struct {
	// Window is the recent interval judged against the baseline, measured
	// back from the newest record's time (default 3 h).
	Window timeutil.Millis
	// Baseline is the lookback interval immediately before Window that
	// provides each shard's reference latency (default 24 h).
	Baseline timeutil.Millis
	// Factor is the recent/baseline median latency ratio at which a shard
	// counts as regressed (default 1.6).
	Factor float64
	// MinShardRecords is the minimum record count a shard needs in both
	// intervals to be judged at all (default 50).
	MinShardRecords int
	// CorrelatedFraction is the fraction of eligible shards that must
	// regress together for the fleet-level collapse (default 0.5).
	CorrelatedFraction float64
	// MinShards is the minimum number of eligible shards for the
	// correlation rule to apply (default 3); below it every regressed
	// shard alerts individually.
	MinShards int
}

func (c *IncidentConfig) setDefaults() {
	if c.Window == 0 {
		c.Window = 3 * timeutil.MillisPerHour
	}
	if c.Baseline == 0 {
		c.Baseline = 24 * timeutil.MillisPerHour
	}
	if c.Factor == 0 {
		c.Factor = 1.6
	}
	if c.MinShardRecords == 0 {
		c.MinShardRecords = 50
	}
	if c.CorrelatedFraction == 0 {
		c.CorrelatedFraction = 0.5
	}
	if c.MinShards == 0 {
		c.MinShards = 3
	}
}

func (c IncidentConfig) validate() error {
	if c.Window <= 0 || c.Baseline <= 0 {
		return fmt.Errorf("watch: non-positive incident window")
	}
	if c.Factor <= 1 {
		return fmt.Errorf("watch: incident factor must exceed 1")
	}
	if c.MinShardRecords < 1 || c.MinShards < 1 {
		return fmt.Errorf("watch: incident minimums must be positive")
	}
	if c.CorrelatedFraction <= 0 || c.CorrelatedFraction > 1 {
		return fmt.Errorf("watch: correlated fraction out of (0,1]")
	}
	return nil
}

// shardRatio is one shard's recent-vs-baseline verdict.
type shardRatio struct {
	shard int
	ratio float64
}

// detectIncident compares each shard's recent median latency against its
// own baseline and collapses correlated regressions into one fleet
// condition. Detection is anchored at the newest record time, never wall
// clock, so replayed histories score identically.
func detectIncident(slice string, snap *live.SliceSnapshot, cfg IncidentConfig) []condition {
	if len(snap.Times) == 0 {
		return nil
	}
	now := snap.Times[len(snap.Times)-1]
	recentLo := now - cfg.Window
	baseLo := recentLo - cfg.Baseline

	eligible := 0
	var flagged []shardRatio
	for si, sh := range snap.Shards {
		if len(sh.Times) == 0 {
			continue
		}
		// Columns are time-sorted; the two intervals are contiguous ranges.
		b0 := sort.Search(len(sh.Times), func(k int) bool { return sh.Times[k] >= baseLo })
		r0 := sort.Search(len(sh.Times), func(k int) bool { return sh.Times[k] >= recentLo })
		base := sh.Lats[b0:r0]
		recent := sh.Lats[r0:]
		if len(base) < cfg.MinShardRecords || len(recent) < cfg.MinShardRecords {
			continue
		}
		eligible++
		bm, err1 := stats.Median(base)
		rm, err2 := stats.Median(recent)
		if err1 != nil || err2 != nil || bm <= 0 {
			continue
		}
		if ratio := rm / bm; ratio >= cfg.Factor {
			flagged = append(flagged, shardRatio{shard: si, ratio: ratio})
		}
	}
	if len(flagged) == 0 {
		return nil
	}

	need := int(math.Ceil(cfg.CorrelatedFraction * float64(eligible)))
	if eligible >= cfg.MinShards && len(flagged) >= need {
		// Correlated: one fleet-level condition with a stable dedupe key, so
		// a fleet-wide regression is exactly one alert however many shards
		// (or ticks) it spans.
		ratios := make([]float64, len(flagged))
		for i, f := range flagged {
			ratios[i] = f.ratio
		}
		med, _ := stats.Median(ratios)
		sev := api.SeverityWarning
		if med >= 1.5*cfg.Factor || len(flagged) == eligible {
			sev = api.SeverityCritical
		}
		return []condition{{
			id:        "latency_incident:" + slice,
			typ:       api.AlertLatencyIncident,
			slice:     slice,
			severity:  sev,
			value:     med,
			threshold: cfg.Factor,
			dataTime:  now,
			message: fmt.Sprintf("correlated latency regression: %d/%d shards at median %.2fx baseline (threshold %.2fx)",
				len(flagged), eligible, med, cfg.Factor),
		}}
	}

	// Uncorrelated: shard-scoped conditions only.
	conds := make([]condition, 0, len(flagged))
	for _, f := range flagged {
		conds = append(conds, condition{
			id:        "shard_latency:" + slice + ":shard" + strconv.Itoa(f.shard),
			typ:       api.AlertShardLatency,
			slice:     slice,
			severity:  api.SeverityWarning,
			value:     f.ratio,
			threshold: cfg.Factor,
			dataTime:  now,
			message: fmt.Sprintf("shard %d latency at %.2fx its baseline (threshold %.2fx, %d/%d shards affected)",
				f.shard, f.ratio, cfg.Factor, len(flagged), eligible),
		})
	}
	return conds
}
