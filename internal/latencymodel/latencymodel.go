// Package latencymodel synthesizes the time-varying end-to-end latency of
// the simulated service. It is the substrate that makes natural experiments
// possible: the latency a user would experience varies over time with
//
//   - a diurnal load component (busy hours are slower) — this is the *time
//     confounder* of Section 2.4.1, deliberately planted so the estimator's
//     α normalization has something real to correct;
//   - an Ornstein–Uhlenbeck (AR(1) on log scale) component — smooth,
//     mean-reverting drift that gives the latency series the *temporal
//     locality* (Figure 1) users can react to;
//   - a two-state Markov incident regime — occasional multi-minute
//     degradations, the "period of high latency" visible in Figure 2;
//   - a per-user network multiplier — persistent user-level differences
//     that drive the conditioning-to-speed quartiles of Section 3.4; and
//   - per-sample log-normal noise — the irreducible jitter of an
//     individual request.
//
// The shared service path is precomputed on a fixed grid at construction,
// so looking up the condition at any time is O(1) and a run is fully
// reproducible from its seed.
package latencymodel

import (
	"errors"
	"fmt"
	"math"

	"autosens/internal/queueing"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// Config parameterizes the latency process.
type Config struct {
	// Horizon is the length of the observation window.
	Horizon timeutil.Millis
	// Step is the resolution of the precomputed service path.
	Step timeutil.Millis
	// BaseMS is the baseline (uncongested) latency per action type.
	BaseMS [telemetry.NumActionTypes]float64
	// LoadGain scales how strongly the diurnal load profile inflates
	// latency: factor = 1 + LoadGain·profile(hour).
	LoadGain float64
	// LoadProfile is the service-wide diurnal load curve, evaluated on
	// service time (UTC).
	LoadProfile timeutil.DiurnalProfile
	// OURho is the per-step AR(1) autocorrelation of the log-latency
	// drift, in [0, 1).
	OURho float64
	// OUSigma is the per-step innovation standard deviation of the
	// drift.
	OUSigma float64
	// IncidentUp is the per-step probability of entering a degraded
	// regime; IncidentDown the per-step probability of leaving it.
	IncidentUp, IncidentDown float64
	// IncidentSeverity multiplies latency while degraded (> 1).
	IncidentSeverity float64
	// NoiseSigma is the log-normal sigma of per-sample jitter.
	NoiseSigma float64
	// QueueServers, when positive, replaces the parametric load factor
	// (1 + LoadGain·profile) with the mechanistic M/M/c response-time
	// factor of a QueueServers-server pool running at
	// QueuePeakUtilization when the load profile is at its peak.
	QueueServers int
	// QueuePeakUtilization is the busy-hour server utilization, in (0,1).
	QueuePeakUtilization float64
}

// UsesQueueing reports whether the mechanistic load backend is selected.
func (c Config) UsesQueueing() bool { return c.QueueServers > 0 }

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments: a two-month horizon caller-adjustable via Horizon.
func DefaultConfig(horizon timeutil.Millis) Config {
	return Config{
		Horizon: horizon,
		Step:    30 * timeutil.MillisPerSecond,
		BaseMS: [telemetry.NumActionTypes]float64{
			telemetry.SelectMail:   240,
			telemetry.SwitchFolder: 270,
			telemetry.Search:       420,
			telemetry.ComposeSend:  160,
		},
		LoadGain:         0.9,
		LoadProfile:      timeutil.LoadProfile(),
		OURho:            0.99,
		OUSigma:          0.085,
		IncidentUp:       0.002,
		IncidentDown:     0.015,
		IncidentSeverity: 2.6,
		NoiseSigma:       0.06,
	}
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.Horizon <= 0 {
		return errors.New("latencymodel: non-positive horizon")
	}
	if c.Step <= 0 {
		return errors.New("latencymodel: non-positive step")
	}
	for a, b := range c.BaseMS {
		if b <= 0 {
			return fmt.Errorf("latencymodel: non-positive base latency for %v", telemetry.ActionType(a))
		}
	}
	if c.LoadGain < 0 {
		return errors.New("latencymodel: negative load gain")
	}
	if err := c.LoadProfile.Validate(); err != nil {
		return err
	}
	if c.OURho < 0 || c.OURho >= 1 {
		return errors.New("latencymodel: OURho out of [0,1)")
	}
	if c.OUSigma < 0 {
		return errors.New("latencymodel: negative OUSigma")
	}
	if c.IncidentUp < 0 || c.IncidentUp > 1 || c.IncidentDown < 0 || c.IncidentDown > 1 {
		return errors.New("latencymodel: incident probabilities out of [0,1]")
	}
	if c.IncidentSeverity < 1 {
		return errors.New("latencymodel: incident severity below 1")
	}
	if c.NoiseSigma < 0 {
		return errors.New("latencymodel: negative NoiseSigma")
	}
	if c.QueueServers < 0 {
		return errors.New("latencymodel: negative server count")
	}
	if c.UsesQueueing() && (c.QueuePeakUtilization <= 0 || c.QueuePeakUtilization >= 1) {
		return errors.New("latencymodel: queue peak utilization out of (0,1)")
	}
	return nil
}

// loadFactorAt evaluates the diurnal load component at time t: the
// parametric form by default, or the M/M/c response-time ratio when the
// queueing backend is selected.
func (c Config) loadFactorAt(t timeutil.Millis) (float64, error) {
	profile := c.LoadProfile.AtTime(t, 0)
	if !c.UsesQueueing() {
		return 1 + c.LoadGain*profile, nil
	}
	return queueing.LoadFactor(c.QueueServers, c.QueuePeakUtilization, profile)
}

// Model is an instantiated latency process over a fixed horizon.
type Model struct {
	cfg  Config
	path []float64 // shared condition multiplier per step
}

// New builds the model, precomputing the shared service path with src.
func New(cfg Config, src *rng.Source) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	steps := int(cfg.Horizon/cfg.Step) + 1
	path := make([]float64, steps)
	x := 0.0 // OU state (log scale)
	degraded := false
	for i := range path {
		t := timeutil.Millis(i) * cfg.Step
		x = cfg.OURho*x + src.Normal(0, cfg.OUSigma)
		if degraded {
			if src.Bool(cfg.IncidentDown) {
				degraded = false
			}
		} else if src.Bool(cfg.IncidentUp) {
			degraded = true
		}
		load, err := cfg.loadFactorAt(t)
		if err != nil {
			return nil, err
		}
		factor := load * math.Exp(x)
		if degraded {
			factor *= cfg.IncidentSeverity
		}
		path[i] = factor
	}
	return &Model{cfg: cfg, path: path}, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// PathFactor returns the shared service condition multiplier at time t,
// linearly interpolated between grid points. Times outside the horizon are
// clamped.
func (m *Model) PathFactor(t timeutil.Millis) float64 {
	if t <= 0 {
		return m.path[0]
	}
	pos := float64(t) / float64(m.cfg.Step)
	i := int(pos)
	if i >= len(m.path)-1 {
		return m.path[len(m.path)-1]
	}
	frac := pos - float64(i)
	return m.path[i]*(1-frac) + m.path[i+1]*frac
}

// ExpectedMS returns the expected latency (in ms) at time t for an action of
// the given type by a user with network multiplier userMult. This is the
// quantity a user can "sense" through locality; it excludes per-sample
// noise.
func (m *Model) ExpectedMS(t timeutil.Millis, a telemetry.ActionType, userMult float64) float64 {
	return m.cfg.BaseMS[a] * m.PathFactor(t) * userMult
}

// SampleMS draws one end-to-end latency observation at time t: the expected
// latency perturbed by log-normal per-request jitter.
func (m *Model) SampleMS(t timeutil.Millis, a telemetry.ActionType, userMult float64, src *rng.Source) float64 {
	jitter := math.Exp(src.Normal(-m.cfg.NoiseSigma*m.cfg.NoiseSigma/2, m.cfg.NoiseSigma))
	return m.ExpectedMS(t, a, userMult) * jitter
}

// NewUserMultiplier draws a persistent per-user network-quality multiplier:
// log-normal around 1 so the population's median latency spans the
// quartile analysis range.
func NewUserMultiplier(src *rng.Source, sigma float64) float64 {
	return math.Exp(src.Normal(0, sigma))
}
