package latencymodel

import (
	"math"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/stats"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

func testConfig() Config {
	return DefaultConfig(2 * timeutil.MillisPerDay)
}

func TestValidateDefault(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Step = 0 },
		func(c *Config) { c.BaseMS[0] = 0 },
		func(c *Config) { c.LoadGain = -1 },
		func(c *Config) { c.OURho = 1 },
		func(c *Config) { c.OURho = -0.1 },
		func(c *Config) { c.OUSigma = -1 },
		func(c *Config) { c.IncidentUp = 1.5 },
		func(c *Config) { c.IncidentDown = -0.1 },
		func(c *Config) { c.IncidentSeverity = 0.5 },
		func(c *Config) { c.NoiseSigma = -0.1 },
	}
	for i, mut := range mutations {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestDeterministicPath(t *testing.T) {
	cfg := testConfig()
	m1, err := New(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []timeutil.Millis{0, 12345, timeutil.MillisPerDay, 2*timeutil.MillisPerDay - 1} {
		if m1.PathFactor(tm) != m2.PathFactor(tm) {
			t.Fatalf("path differs at %d", tm)
		}
	}
}

func TestPathFactorPositive(t *testing.T) {
	m, err := New(testConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for tm := timeutil.Millis(0); tm < 2*timeutil.MillisPerDay; tm += timeutil.MillisPerMinute {
		if f := m.PathFactor(tm); f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("PathFactor(%d) = %v", tm, f)
		}
	}
}

func TestPathFactorClampsOutsideHorizon(t *testing.T) {
	m, err := New(testConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.PathFactor(-5) != m.PathFactor(0) {
		t.Fatal("negative time not clamped")
	}
	if m.PathFactor(100*timeutil.MillisPerDay) <= 0 {
		t.Fatal("beyond-horizon not clamped")
	}
}

func TestPathFactorInterpolates(t *testing.T) {
	m, err := New(testConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	step := m.Config().Step
	a := m.PathFactor(0)
	b := m.PathFactor(step)
	mid := m.PathFactor(step / 2)
	lo, hi := math.Min(a, b), math.Max(a, b)
	if mid < lo-1e-12 || mid > hi+1e-12 {
		t.Fatalf("midpoint %v outside [%v, %v]", mid, lo, hi)
	}
}

func TestExpectedLatencyScalesWithUserMult(t *testing.T) {
	m, err := New(testConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tm := timeutil.MillisPerHour
	base := m.ExpectedMS(tm, telemetry.SelectMail, 1.0)
	doubled := m.ExpectedMS(tm, telemetry.SelectMail, 2.0)
	if math.Abs(doubled-2*base) > 1e-9 {
		t.Fatalf("user multiplier not linear: %v vs %v", base, doubled)
	}
}

func TestActionTypeOrdering(t *testing.T) {
	m, err := New(testConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	tm := timeutil.MillisPerHour
	// Search must be slower than SelectMail; ComposeSend fastest ack.
	if m.ExpectedMS(tm, telemetry.Search, 1) <= m.ExpectedMS(tm, telemetry.SelectMail, 1) {
		t.Fatal("Search should be slower than SelectMail")
	}
	if m.ExpectedMS(tm, telemetry.ComposeSend, 1) >= m.ExpectedMS(tm, telemetry.SelectMail, 1) {
		t.Fatal("ComposeSend ack should be faster than SelectMail")
	}
}

func TestSampleNoiseUnbiased(t *testing.T) {
	m, err := New(testConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(8)
	tm := timeutil.MillisPerHour
	expected := m.ExpectedMS(tm, telemetry.SelectMail, 1)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.SampleMS(tm, telemetry.SelectMail, 1, src)
	}
	mean := sum / n
	// The jitter uses mu = -sigma^2/2, so E[jitter] = 1.
	if math.Abs(mean/expected-1) > 0.02 {
		t.Fatalf("sample mean %v vs expected %v", mean, expected)
	}
}

func TestDiurnalLoadVisibleInPath(t *testing.T) {
	// Average the path factor over busy (14h UTC) vs quiet (3h UTC) hours
	// across many days: busy hours must be slower.
	cfg := DefaultConfig(20 * timeutil.MillisPerDay)
	m, err := New(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var busy, quiet float64
	var n int
	for day := 0; day < 20; day++ {
		d := timeutil.Millis(day) * timeutil.MillisPerDay
		busy += m.PathFactor(d + 14*timeutil.MillisPerHour)
		quiet += m.PathFactor(d + 3*timeutil.MillisPerHour)
		n++
	}
	if busy/float64(n) <= quiet/float64(n) {
		t.Fatalf("busy-hour factor %v not above quiet-hour %v", busy/float64(n), quiet/float64(n))
	}
}

func TestPathHasTemporalLocality(t *testing.T) {
	// The latency series sampled on the path grid must show an MSD/MAD
	// ratio well below 1 — the property Figure 1 depends on.
	cfg := DefaultConfig(5 * timeutil.MillisPerDay)
	m, err := New(cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	var series []float64
	for tm := timeutil.Millis(0); tm < cfg.Horizon; tm += cfg.Step {
		series = append(series, m.PathFactor(tm))
	}
	ratio, err := stats.MSDMADRatio(series)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 0.5 {
		t.Fatalf("path MSD/MAD = %v, want strong locality (<0.5)", ratio)
	}
}

func TestIncidentsOccur(t *testing.T) {
	// Over 20 days with default rates, at least one degradation period
	// should push the path well above its median.
	cfg := DefaultConfig(20 * timeutil.MillisPerDay)
	m, err := New(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	var series []float64
	for tm := timeutil.Millis(0); tm < cfg.Horizon; tm += cfg.Step {
		series = append(series, m.PathFactor(tm))
	}
	med, err := stats.Median(series)
	if err != nil {
		t.Fatal(err)
	}
	spikes := 0
	for _, v := range series {
		if v > 2*med {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("no incident spikes over 20 days")
	}
}

func TestUserMultiplierSpread(t *testing.T) {
	src := rng.New(12)
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = NewUserMultiplier(src, 0.35)
		if vals[i] <= 0 {
			t.Fatal("non-positive user multiplier")
		}
	}
	med, _ := stats.Median(vals)
	if math.Abs(med-1) > 0.03 {
		t.Fatalf("multiplier median = %v, want ~1", med)
	}
	q1, _, q3, _ := stats.Quartiles(vals)
	if q3/q1 < 1.3 {
		t.Fatalf("multiplier IQR ratio %v too narrow for quartile analysis", q3/q1)
	}
}

func TestQueueingBackendValidation(t *testing.T) {
	c := testConfig()
	c.QueueServers = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative servers accepted")
	}
	c = testConfig()
	c.QueueServers = 8
	c.QueuePeakUtilization = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero utilization accepted")
	}
	c.QueuePeakUtilization = 0.85
	if err := c.Validate(); err != nil {
		t.Fatalf("valid queueing config rejected: %v", err)
	}
	if !c.UsesQueueing() {
		t.Fatal("UsesQueueing false")
	}
}

func TestQueueingBackendDiurnalShape(t *testing.T) {
	// The queueing load factor must preserve the busy-slower-than-quiet
	// structure the parametric factor provides.
	cfg := DefaultConfig(20 * timeutil.MillisPerDay)
	cfg.QueueServers = 8
	cfg.QueuePeakUtilization = 0.85
	m, err := New(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	var busy, quiet float64
	for day := 0; day < 20; day++ {
		d := timeutil.Millis(day) * timeutil.MillisPerDay
		busy += m.PathFactor(d + 15*timeutil.MillisPerHour)
		quiet += m.PathFactor(d + 6*timeutil.MillisPerHour)
	}
	if busy <= quiet {
		t.Fatalf("queueing backend lost the diurnal structure: busy %v vs quiet %v", busy, quiet)
	}
	for tm := timeutil.Millis(0); tm < cfg.Horizon; tm += timeutil.MillisPerHour {
		if f := m.PathFactor(tm); f <= 0 || math.IsNaN(f) {
			t.Fatalf("bad factor %v at %d", f, tm)
		}
	}
}

func BenchmarkPathFactor(b *testing.B) {
	m, err := New(DefaultConfig(60*timeutil.MillisPerDay), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PathFactor(timeutil.Millis(i % int(60*timeutil.MillisPerDay)))
	}
}

func BenchmarkSampleMS(b *testing.B) {
	m, err := New(DefaultConfig(60*timeutil.MillisPerDay), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleMS(timeutil.Millis(i), telemetry.SelectMail, 1.0, src)
	}
}
