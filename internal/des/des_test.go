package des

import (
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func(timeutil.Millis) { order = append(order, 3) })
	s.At(10, func(timeutil.Millis) { order = append(order, 1) })
	s.At(20, func(timeutil.Millis) { order = append(order, 2) })
	n := s.Run(100)
	if n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestFIFOWithinTimestamp(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func(timeutil.Millis) { order = append(order, i) })
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var seen []timeutil.Millis
	s.At(7, func(now timeutil.Millis) { seen = append(seen, now, s.Now()) })
	s.Run(100)
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 7 {
		t.Fatalf("clock wrong: %v", seen)
	}
	if s.Now() != 100 {
		t.Fatalf("final clock = %d, want horizon", s.Now())
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := New()
	count := 0
	var tick func(now timeutil.Millis)
	tick = func(now timeutil.Millis) {
		count++
		if count < 5 {
			if err := s.After(10, tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.At(0, tick)
	s.Run(1000)
	if count != 5 {
		t.Fatalf("chained events ran %d times", count)
	}
}

func TestHorizonExclusive(t *testing.T) {
	s := New()
	ran := false
	s.At(50, func(timeutil.Millis) { ran = true })
	s.Run(50)
	if ran {
		t.Fatal("event at horizon executed")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// A second Run with a larger horizon picks it up.
	s.Run(51)
	if !ran {
		t.Fatal("event not executed on resumed run")
	}
}

func TestSchedulingInPastRejected(t *testing.T) {
	s := New()
	s.At(10, func(timeutil.Millis) {
		if err := s.At(5, func(timeutil.Millis) {}); err != ErrPast {
			t.Fatalf("past scheduling: %v", err)
		}
	})
	s.Run(20)
}

func TestNegativeDelayRejected(t *testing.T) {
	s := New()
	s.At(10, func(timeutil.Millis) {
		if err := s.After(-1, func(timeutil.Millis) {}); err != ErrPast {
			t.Fatalf("negative delay: %v", err)
		}
	})
	s.Run(20)
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(timeutil.Millis(i), func(timeutil.Millis) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	n := s.Run(100)
	if n != 3 || count != 3 {
		t.Fatalf("Stop did not halt: n=%d count=%d", n, count)
	}
}

func TestSameTimeAsNowAllowed(t *testing.T) {
	s := New()
	ran := false
	s.At(10, func(now timeutil.Millis) {
		if err := s.At(now, func(timeutil.Millis) { ran = true }); err != nil {
			t.Fatal(err)
		}
	})
	s.Run(20)
	if !ran {
		t.Fatal("same-time event not executed")
	}
}

func TestManyRandomEventsOrdered(t *testing.T) {
	r := rng.New(1)
	s := New()
	var last timeutil.Millis = -1
	ok := true
	for i := 0; i < 10000; i++ {
		s.At(timeutil.Millis(r.Intn(100000)), func(now timeutil.Millis) {
			if now < last {
				ok = false
			}
			last = now
		})
	}
	s.Run(200000)
	if !ok {
		t.Fatal("events executed out of order")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	r := rng.New(1)
	times := make([]timeutil.Millis, 10000)
	for i := range times {
		times[i] = timeutil.Millis(r.Intn(1000000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, at := range times {
			s.At(at, func(timeutil.Millis) {})
		}
		s.Run(2000000)
	}
}
