// Package des is a small discrete-event simulation core: a priority queue
// of timestamped events and a simulation clock. The OWA workload simulator
// schedules user-session and action events on it.
//
// Events with equal timestamps fire in scheduling order (FIFO within a
// timestamp), which keeps runs deterministic.
package des

import (
	"container/heap"
	"errors"

	"autosens/internal/timeutil"
)

// Event is a callback scheduled at a simulation time. The callback may
// schedule further events.
type Event func(now timeutil.Millis)

type item struct {
	at  timeutil.Millis
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Simulator owns the event queue and the clock.
type Simulator struct {
	now     timeutil.Millis
	queue   eventHeap
	seq     uint64
	stopped bool
}

// New returns a Simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() timeutil.Millis { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// ErrPast is returned when scheduling before the current simulation time.
var ErrPast = errors.New("des: event scheduled in the past")

// At schedules fn at absolute time at. Scheduling at the current time is
// allowed (the event runs after all events already queued for that time).
func (s *Simulator) At(at timeutil.Millis, fn Event) error {
	if at < s.now {
		return ErrPast
	}
	heap.Push(&s.queue, item{at: at, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// After schedules fn delay milliseconds from now. Negative delays are
// rejected.
func (s *Simulator) After(delay timeutil.Millis, fn Event) error {
	return s.At(s.now+delay, fn)
}

// Stop aborts the run loop after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in time order until the queue empties, the horizon is
// passed, or Stop is called. Events scheduled at exactly the horizon do not
// run (the window is [0, horizon)). Returns the number of events executed.
func (s *Simulator) Run(horizon timeutil.Millis) int {
	s.stopped = false
	executed := 0
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at >= horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn(s.now)
		executed++
	}
	if s.now < horizon && !s.stopped {
		s.now = horizon
	}
	return executed
}
