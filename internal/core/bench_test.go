package core

import (
	"testing"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// benchWorkload synthesizes the fixed estimator benchmark workload: four
// days of confounded traffic (busy/slow days, quiet/fast nights), ~65k
// records. The same seed is used everywhere so ns/op values are comparable
// across commits (see BENCH_core.json).
func benchWorkload() []telemetry.Record {
	src := rng.New(77)
	day := func(tm timeutil.Millis) bool {
		h := timeutil.HourOfDay(tm, 0)
		return h >= 8 && h < 20
	}
	return genBenchRecords(src, 4*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if day(tm) {
				return 550
			}
			return 280
		}, 0.45,
		func(tm timeutil.Millis) float64 {
			if day(tm) {
				return 20
			}
			return 2.5
		})
}

// genBenchRecords mirrors genRecords but lives here so benchmarks do not
// depend on test helpers ordering.
func genBenchRecords(src *rng.Source, horizon timeutil.Millis, latMedian func(timeutil.Millis) float64, sigma float64, ratePerMin func(timeutil.Millis) float64) []telemetry.Record {
	var out []telemetry.Record
	for m := timeutil.Millis(0); m < horizon; m += timeutil.MillisPerMinute {
		n := src.Poisson(ratePerMin(m))
		for i := 0; i < n; i++ {
			tt := m + timeutil.Millis(src.Intn(int(timeutil.MillisPerMinute)))
			lat := latMedian(tt) * src.LogNormal(0, sigma)
			out = append(out, mkRec(tt, lat))
		}
	}
	telemetry.SortByTime(out)
	return out
}

var benchRecs []telemetry.Record

func benchRecords(b *testing.B) []telemetry.Record {
	b.Helper()
	if benchRecs == nil {
		benchRecs = benchWorkload()
	}
	return benchRecs
}

func benchEstimator(b *testing.B) *Estimator {
	b.Helper()
	o := DefaultOptions()
	o.ReferenceMS = 300
	e, err := NewEstimator(o)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchCIOpts() CIOptions {
	o := DefaultCIOptions()
	o.Resamples = 16
	return o
}

// BenchmarkEstimate measures the pooled (no-α) estimator end to end.
func BenchmarkEstimate(b *testing.B) {
	records := benchRecords(b)
	e := benchEstimator(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateTimeNormalized measures the full method (slotting, α
// normalization over rotating references, averaging).
func BenchmarkEstimateTimeNormalized(b *testing.B) {
	records := benchRecords(b)
	e := benchEstimator(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimateTimeNormalized(records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateCI measures the bootstrap confidence-interval path (16
// replicates of 6 h blocks, plain estimator per replicate) at the default
// worker count (GOMAXPROCS).
func BenchmarkEstimateCI(b *testing.B) {
	benchmarkEstimateCI(b, 0)
}

// BenchmarkEstimateCISerial pins the bootstrap to one worker, isolating
// the algorithmic (non-parallel) part of the speedup.
func BenchmarkEstimateCISerial(b *testing.B) {
	benchmarkEstimateCI(b, 1)
}

// BenchmarkEstimateCIWorkers8 runs the bootstrap at eight workers (the
// acceptance configuration; on fewer cores the scheduler just multiplexes).
func BenchmarkEstimateCIWorkers8(b *testing.B) {
	benchmarkEstimateCI(b, 8)
}

func benchmarkEstimateCI(b *testing.B, workers int) {
	b.Helper()
	records := benchRecords(b)
	e := benchEstimator(b)
	opts := benchCIOpts()
	opts.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimateCI(records, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnbiasedSampling isolates the unbiased-distribution fill on the
// historical per-draw path: 2× draws over the full window into one
// histogram, one binary search per draw.
func BenchmarkUnbiasedSampling(b *testing.B) {
	records := benchRecords(b)
	e := benchEstimator(b)
	src := rng.New(3)
	lo := records[0].Time
	hi := records[len(records)-1].Time + 1
	draws := 2 * len(records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newUnbiasedSampler(records)
		u := e.newHist()
		for k := 0; k < draws; k++ {
			u.Add(s.draw(lo, hi, src))
		}
	}
}

// BenchmarkUnbiasedSweep is the batch counterpart of
// BenchmarkUnbiasedSampling: same draw count, generate-sort-merge instead
// of per-draw binary searches.
func BenchmarkUnbiasedSweep(b *testing.B) {
	records := benchRecords(b)
	e := benchEstimator(b)
	src := rng.New(3)
	lo := records[0].Time
	hi := records[len(records)-1].Time + 1
	draws := 2 * len(records)
	var sc sweepScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newUnbiasedSampler(records)
		u := e.newHist()
		s.fillSweep(lo, hi, draws, src, &sc, u)
	}
}
