package core

import (
	"errors"

	"autosens/internal/rng"
	"autosens/internal/stats"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// Locality computes the MSD/MAD locality report of Figure 1 for the
// latency series of the given records (ordered by time): the ratio for the
// series as observed, randomly shuffled, and sorted by latency.
func (e *Estimator) Locality(records []telemetry.Record) (stats.LocalityReport, error) {
	records = usable(records)
	if len(records) < 2 {
		return stats.LocalityReport{}, errors.New("core: need at least 2 records for locality")
	}
	telemetry.SortByTime(records)
	return stats.Locality(telemetry.Latencies(records), rng.New(e.opts.Seed))
}

// TimeSeries is the per-window activity/latency series of Figure 2.
type TimeSeries struct {
	// WindowStart is the start time of each window.
	WindowStart []timeutil.Millis
	// MeanLatency is the mean latency of actions in the window (NaN-free:
	// windows with no actions are omitted entirely).
	MeanLatency []float64
	// Count is the number of actions in the window.
	Count []float64
}

// ActivityLatencySeries aggregates records into fixed windows, returning
// the mean latency and the action count per non-empty window.
func ActivityLatencySeries(records []telemetry.Record, window timeutil.Millis) (*TimeSeries, error) {
	if window <= 0 {
		return nil, errors.New("core: non-positive window")
	}
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	sums := make(map[int64]float64)
	counts := make(map[int64]float64)
	var minW, maxW int64
	first := true
	for _, r := range records {
		w := int64(r.Time / window)
		sums[w] += r.LatencyMS
		counts[w]++
		if first || w < minW {
			minW = w
		}
		if first || w > maxW {
			maxW = w
		}
		first = false
	}
	ts := &TimeSeries{}
	for w := minW; w <= maxW; w++ {
		c, ok := counts[w]
		if !ok {
			continue
		}
		ts.WindowStart = append(ts.WindowStart, timeutil.Millis(w)*window)
		ts.MeanLatency = append(ts.MeanLatency, sums[w]/c)
		ts.Count = append(ts.Count, c)
	}
	return ts, nil
}

// DensityLatencyCorrelation computes the second locality diagnostic of
// Section 2.1: the Pearson correlation between the temporal density of
// latency samples (per window) and the mean latency in the window. A
// negative value indicates that low-latency points cluster in time with
// high activity.
func DensityLatencyCorrelation(records []telemetry.Record, window timeutil.Millis) (float64, error) {
	ts, err := ActivityLatencySeries(records, window)
	if err != nil {
		return 0, err
	}
	return stats.Pearson(ts.MeanLatency, ts.Count)
}

// Normalized returns copies of the series' latency and count columns each
// divided by its maximum — the normalized axes the paper uses in Figure 2
// for confidentiality. Returned slices are safe to modify.
func (ts *TimeSeries) Normalized() (lat, cnt []float64) {
	lat = make([]float64, len(ts.MeanLatency))
	cnt = make([]float64, len(ts.Count))
	var maxL, maxC float64
	for i := range ts.MeanLatency {
		if ts.MeanLatency[i] > maxL {
			maxL = ts.MeanLatency[i]
		}
		if ts.Count[i] > maxC {
			maxC = ts.Count[i]
		}
	}
	for i := range ts.MeanLatency {
		if maxL > 0 {
			lat[i] = ts.MeanLatency[i] / maxL
		}
		if maxC > 0 {
			cnt[i] = ts.Count[i] / maxC
		}
	}
	return lat, cnt
}
