package core

import (
	"errors"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/timeutil"
)

// Summary is a mergeable, delta-foldable partial of one record slice: the
// usable records as (time, seq)-sorted flat columns plus their biased
// latency histogram, maintained incrementally so re-estimations cost
// O(records since the last fold) instead of O(rescan).
//
// The seq column carries the global ack sequence number of each record.
// Ack order breaks time ties (seqs strictly increase in ack order), so a
// (time, seq) merge of sorted partials reproduces exactly the stable
// by-time sort the batch estimator applies to the ack-ordered stream —
// the invariant the live engine's byte-identity guarantee rests on.
//
// The biased histogram is a pure append of weight-1 counts (exact integer
// arithmetic in float64, hence order-independent), so folding deltas in
// arrival order yields the same histogram bit for bit as a from-scratch
// rebuild — Fold never needs to revisit old records.
type Summary struct {
	Times []timeutil.Millis
	Lats  []float64
	Seqs  []uint64
	// B, when non-nil, is the delta-maintained biased histogram over Lats.
	// Fold keeps it in sync; estimators consume it in place of an O(n)
	// rebuild.
	B *histogram.Histogram

	// Retired column buffers, reused by the next out-of-order fold so that
	// steady-state folding allocates only on capacity growth.
	spareTimes []timeutil.Millis
	spareLats  []float64
	spareSeqs  []uint64
}

// Len returns the number of records summarized.
func (s *Summary) Len() int { return len(s.Times) }

// summaryLess orders (time, seq) pairs.
func summaryLess(t1 timeutil.Millis, s1 uint64, t2 timeutil.Millis, s2 uint64) bool {
	if t1 != t2 {
		return t1 < t2
	}
	return s1 < s2
}

var errSummaryColumns = errors.New("core: summary columns differ in length")

// check validates the parallel-column invariant.
func (s *Summary) check() error {
	if len(s.Times) != len(s.Lats) || len(s.Times) != len(s.Seqs) {
		return errSummaryColumns
	}
	return nil
}

// Fold merges a (time, seq)-sorted delta into s. The delta's columns are
// read-only and not retained; s owns its own storage. When the delta lands
// entirely past s's maximum (time, seq) — the common case under in-order
// arrival — the fold is a pure append, O(len(delta)) amortized. Otherwise
// a single two-way merge into retained spare buffers runs in
// O(len(s) + len(delta)) with no allocation at steady state.
//
// When s.B is non-nil every delta latency is added to it, keeping the
// biased histogram exact (see the type comment for why add order cannot
// matter).
func (s *Summary) Fold(dTimes []timeutil.Millis, dLats []float64, dSeqs []uint64) error {
	if len(dTimes) != len(dLats) || len(dTimes) != len(dSeqs) {
		return errSummaryColumns
	}
	if err := s.check(); err != nil {
		return err
	}
	if len(dTimes) == 0 {
		return nil
	}
	if s.B != nil {
		for _, v := range dLats {
			s.B.Add(v)
		}
	}
	n := len(s.Times)
	if n == 0 || !summaryLess(dTimes[0], dSeqs[0], s.Times[n-1], s.Seqs[n-1]) {
		// Append fast path: the whole delta sorts after everything held.
		s.Times = append(s.Times, dTimes...)
		s.Lats = append(s.Lats, dLats...)
		s.Seqs = append(s.Seqs, dSeqs...)
		return nil
	}
	// Out-of-order delta: two-way merge into the spare buffers, then swap.
	// Grown buffers take 25% headroom so a run of small folds amortizes
	// instead of reallocating on every one-record growth.
	total := n + len(dTimes)
	mt := s.spareTimes[:0]
	if cap(mt) < total {
		mt = make([]timeutil.Millis, 0, total+total/4)
	}
	ml := s.spareLats[:0]
	if cap(ml) < total {
		ml = make([]float64, 0, total+total/4)
	}
	ms := s.spareSeqs[:0]
	if cap(ms) < total {
		ms = make([]uint64, 0, total+total/4)
	}
	i, j := 0, 0
	for i < n && j < len(dTimes) {
		if summaryLess(s.Times[i], s.Seqs[i], dTimes[j], dSeqs[j]) {
			mt = append(mt, s.Times[i])
			ml = append(ml, s.Lats[i])
			ms = append(ms, s.Seqs[i])
			i++
		} else {
			mt = append(mt, dTimes[j])
			ml = append(ml, dLats[j])
			ms = append(ms, dSeqs[j])
			j++
		}
	}
	mt = append(append(mt, s.Times[i:]...), dTimes[j:]...)
	ml = append(append(ml, s.Lats[i:]...), dLats[j:]...)
	ms = append(append(ms, s.Seqs[i:]...), dSeqs[j:]...)
	s.spareTimes, s.Times = s.Times, mt
	s.spareLats, s.Lats = s.Lats, ml
	s.spareSeqs, s.Seqs = s.Seqs, ms
	return nil
}

// FoldSummary folds another summary's columns into s (d is read-only).
func (s *Summary) FoldSummary(d *Summary) error {
	return s.Fold(d.Times, d.Lats, d.Seqs)
}

// MergeSummaries k-way merges sorted partials into dst (reset first),
// preserving the (time, seq) order — the wire-form combine step a
// scatter-gather coordinator runs over per-node partials. Partial
// histograms are summed into dst.B when dst.B is non-nil and every part
// carries one; parts with nil histograms contribute per-record adds.
func MergeSummaries(dst *Summary, parts ...*Summary) error {
	dst.Times = dst.Times[:0]
	dst.Lats = dst.Lats[:0]
	dst.Seqs = dst.Seqs[:0]
	if dst.B != nil {
		dst.B.Reset()
	}
	n := 0
	for _, p := range parts {
		if err := p.check(); err != nil {
			return err
		}
		n += p.Len()
	}
	if cap(dst.Times) < n {
		dst.Times = make([]timeutil.Millis, 0, n)
		dst.Lats = make([]float64, 0, n)
		dst.Seqs = make([]uint64, 0, n)
	}
	cursors := make([]int, len(parts))
	for {
		best := -1
		for i, p := range parts {
			c := cursors[i]
			if c >= p.Len() {
				continue
			}
			if best < 0 || summaryLess(p.Times[c], p.Seqs[c],
				parts[best].Times[cursors[best]], parts[best].Seqs[cursors[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := cursors[best]
		dst.Times = append(dst.Times, parts[best].Times[c])
		dst.Lats = append(dst.Lats, parts[best].Lats[c])
		dst.Seqs = append(dst.Seqs, parts[best].Seqs[c])
		cursors[best]++
	}
	if dst.B != nil {
		for _, p := range parts {
			if p.B != nil {
				if err := dst.B.AddHistogram(p.B); err != nil {
					return err
				}
			} else {
				for _, v := range p.Lats {
					dst.B.Add(v)
				}
			}
		}
	}
	return nil
}

// EstimateSummary computes the plain pooled NLP curve (Sections 2.2–2.3)
// over a delta-maintained Summary, bit-identical to EstimateColumns over
// the same columns. s.B, when non-nil, stands in for the O(n) biased
// histogram build; plan, when non-nil, retains the unbiased draw-key
// schedule across calls so a re-estimation after a small fold regenerates
// no keys unless the observation window moved (see UnbiasedPlan); sc
// reuses the output-side histograms. With all three retained by the
// caller, a re-estimation costs one linear sweep over the columns plus
// curve finishing — no sort, no per-epoch key generation, and no
// allocation beyond the returned Curve.
func (e *Estimator) EstimateSummary(s *Summary, plan *UnbiasedPlan, sc *Scratch) (*Curve, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate_summary")
	defer sp.End()
	if err := s.check(); err != nil {
		return nil, err
	}
	if err := checkColumns(s.Times, s.Lats); err != nil {
		return nil, err
	}
	sp.SetAttr("records", s.Len())
	if plan == nil {
		return e.estimateColumns(sp, s.B, s.Times, s.Lats, sc)
	}

	b := s.B
	if b == nil {
		if sc != nil {
			b = sc.biased(e)
		} else {
			b = e.newHist()
		}
		for _, v := range s.Lats {
			b.Add(v)
		}
	}

	uSp := sp.StartChild("sample_unbiased")
	lo := s.Times[0]
	hi := s.Times[len(s.Times)-1] + 1
	draws := drawCount(s.Len(), e.opts.UnbiasedPerSample)
	plan.update(e.opts.Seed, uint64(hi-lo), draws)
	var u *histogram.Histogram
	if sc != nil {
		u = sc.unbiased(e)
	} else {
		u = e.newHist()
	}
	sweepSortedKeys(s.Times, s.Lats, lo, plan.sorted, plan.auxSeed, u)
	uSp.SetAttr("draws", draws)
	uSp.SetAttr("reused_keys", plan.reused)
	uSp.End()

	return e.finishCurve(sp, b, u, s.Len(), draws)
}
