package core

import (
	"errors"
	"math"
	"sort"

	"autosens/internal/histogram"
	"autosens/internal/rng"
)

// BootSketch is a mergeable Poisson-bootstrap confidence sketch maintained
// in lockstep with an Incremental's stable sweep state. Where the exact
// moving-block bootstrap must rerun every replicate's full unbiased sweep
// per epoch, the sketch keeps, per replicate r:
//
//   - a biased histogram whose records carry deterministic Poisson(1)
//     weights w(r, seq) — the standard mergeable approximation of
//     multinomial resampling;
//   - a stable unbiased histogram where each aux-independent draw
//     contributes its adopted latency at the adopted RECORD's weight, so a
//     record's resampling multiplicity consistently scales both its biased
//     mass and every draw that lands on it.
//
// Both fold with the same interval machinery the point estimate uses —
// weights are pure functions of (seed, replicate, seq), so retracting and
// re-adding a draw is exact — and a bounds query is R histogram-copy +
// curve-finish passes with no per-replicate sweep.
//
// The trade: Poisson record resampling ignores the temporal block structure
// the exact bootstrap preserves, and a zero-weight record's draws vanish
// instead of adopting the next-nearest survivor. SketchBounds is therefore
// an approximation, and callers gate it on distribution-level KS
// equivalence against the exact bootstrap (KSBinsStat / KSCritical) before
// trusting it.
type BootSketch struct {
	e        *Estimator
	reps     int
	repSeeds []uint64
	b        []*histogram.Histogram
	u        []*histogram.Histogram
	uOut     *histogram.Histogram
	valid    bool

	// auxV/auxW cache the per-estimate aux-dependent draw resolutions so
	// the drawKeyIndex walk runs once, not once per replicate.
	auxV []float64
	auxS []uint64
}

// NewBootSketch returns a sketch with the given replicate count, weighted
// by seed. Attach it to an Incremental (inc.Sketch = s) BEFORE the first
// estimate so rebuilds keep it in sync.
func (e *Estimator) NewBootSketch(resamples int, seed uint64) *BootSketch {
	s := &BootSketch{
		e:        e,
		reps:     resamples,
		repSeeds: make([]uint64, resamples),
		b:        make([]*histogram.Histogram, resamples),
		u:        make([]*histogram.Histogram, resamples),
		uOut:     e.newHist(),
	}
	for r := range s.repSeeds {
		s.repSeeds[r] = rng.Mix64(seed + uint64(r)*0x9e3779b97f4a7c15)
		s.b[r] = e.newHist()
		s.u[r] = e.newHist()
	}
	return s
}

func (s *BootSketch) invalidate() { s.valid = false }

// weight is replicate r's resampling multiplicity for the record with ack
// sequence seq: Poisson(1) by inverse CDF over a mixed hash, deterministic
// and storage-free.
func (s *BootSketch) weight(r int, seq uint64) float64 {
	return poisson1(rng.Mix64(s.repSeeds[r] ^ seq))
}

// poisson1 maps a uniform 64-bit word to a Poisson(1) variate by walking
// the inverse CDF (mean 1 ⇒ the walk terminates in ~2 steps on average).
func poisson1(u uint64) float64 {
	f := float64(u>>11) * (1.0 / (1 << 53))
	term := math.Exp(-1)
	cum := term
	k := 0
	for f > cum && k < 32 {
		k++
		term /= float64(k)
		cum += term
	}
	return float64(k)
}

// foldRecords accumulates a delta's records into every replicate's biased
// histogram at their Poisson weights.
func (s *BootSketch) foldRecords(dLats []float64, dSeqs []uint64) {
	if !s.valid {
		return
	}
	for i, v := range dLats {
		for r := 0; r < s.reps; r++ {
			if w := s.weight(r, dSeqs[i]); w != 0 {
				s.b[r].AddWeighted(v, w)
			}
		}
	}
}

// retractDraw removes m draws that adopted the record (v, seq) from every
// replicate's stable unbiased histogram; addDraw is its inverse.
func (s *BootSketch) retractDraw(v float64, seq uint64, m int) {
	if !s.valid {
		return
	}
	for r := 0; r < s.reps; r++ {
		if w := s.weight(r, seq); w != 0 {
			s.u[r].SubWeighted(v, w*float64(m))
		}
	}
}

func (s *BootSketch) addDraw(v float64, seq uint64, m int) {
	if !s.valid {
		return
	}
	for r := 0; r < s.reps; r++ {
		if w := s.weight(r, seq); w != 0 {
			s.u[r].AddWeighted(v, w*float64(m))
		}
	}
}

// rebuild reconstructs every replicate histogram from the Incremental's
// columns and key schedule. O(n·R + draws·R); runs only when the point
// estimate itself rebuilt (first estimate or window move).
func (s *BootSketch) rebuild(inc *Incremental) {
	for r := 0; r < s.reps; r++ {
		s.b[r].Reset()
		s.u[r].Reset()
	}
	s.valid = true
	s.foldRecords(inc.sum.Lats, inc.sum.Seqs)
	lo := inc.sum.Times[0]
	classifyKeys(inc.sum.Times, lo, inc.plan.sorted, 0, len(inc.plan.sorted),
		func(_, j int, dep bool) {
			if !dep {
				s.addDraw(inc.sum.Lats[j], inc.sum.Seqs[j], 1)
			}
		})
}

// ErrSketchUnavailable reports that the sketch cannot serve bounds for the
// current state (no stable sweep: tie-degenerate data or pre-first-estimate).
var ErrSketchUnavailable = errors.New("core: bootstrap sketch unavailable for this state")

// SketchBounds derives approximate confidence bounds from the maintained
// replicate histograms. point must be the curve EstimatePlain just returned
// (calling EstimatePlain first also guarantees the sketch state is built).
// Replicate aggregation mirrors the exact bootstrap's: per-bin quantiles at
// (1±Confidence)/2 over replicates, NaN where support falls under
// MinSupport.
func (s *BootSketch) SketchBounds(inc *Incremental, point *Curve, opts CIOptions) (*CurveCI, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MinSupport == 0 {
		opts.MinSupport = 0.5
	}
	if !s.valid || !inc.stValid {
		return nil, ErrSketchUnavailable
	}
	n := inc.sum.Len()
	draws := len(inc.plan.sorted)
	lo := inc.sum.Times[0]

	// Resolve the aux-dependent draws once; replicates differ only in the
	// weight of the adopted record.
	s.auxV = s.auxV[:0]
	s.auxS = s.auxS[:0]
	for _, r := range inc.auxDep {
		aux := rng.Mix64(inc.plan.auxSeed + uint64(r))
		j := drawKeyIndex(inc.sum.Times, lo, inc.plan.sorted[r], aux)
		s.auxV = append(s.auxV, inc.sum.Lats[j])
		s.auxS = append(s.auxS, inc.sum.Seqs[j])
	}

	bins := len(point.NLP)
	samples := make([][]float64, bins)
	replicates := 0
	for r := 0; r < s.reps; r++ {
		if err := s.uOut.CopyFrom(s.u[r]); err != nil {
			return nil, err
		}
		for i, v := range s.auxV {
			if w := s.weight(r, s.auxS[i]); w != 0 {
				s.uOut.AddWeighted(v, w)
			}
		}
		c, err := s.e.finishCurve(nil, s.b[r], s.uOut, n, draws)
		if err != nil {
			continue // degenerate replicate: skipped, like the exact path
		}
		replicates++
		for i := 0; i < bins; i++ {
			if c.Valid[i] {
				samples[i] = append(samples[i], c.NLP[i])
			}
		}
	}
	if replicates < 2 {
		return nil, errors.New("core: too few successful sketch replicates")
	}

	out := &CurveCI{
		Curve:      point,
		Lower:      make([]float64, bins),
		Upper:      make([]float64, bins),
		Replicates: replicates,
	}
	alpha := (1 - opts.Confidence) / 2
	need := int(math.Ceil(opts.MinSupport * float64(replicates)))
	for i := 0; i < bins; i++ {
		vs := samples[i]
		if len(vs) < need || len(vs) < 2 {
			out.Lower[i] = math.NaN()
			out.Upper[i] = math.NaN()
			continue
		}
		sort.Float64s(vs)
		out.Lower[i] = quantileSorted(vs, alpha)
		out.Upper[i] = quantileSorted(vs, 1-alpha)
	}
	if opts.KeepSamples {
		out.BinSamples = samples
	}
	return out, nil
}

// KSBinsStat compares two bootstrap results' per-bin replicate
// distributions (both must carry BinSamples, i.e. be estimated with
// KeepSamples) with the two-sample Kolmogorov–Smirnov statistic, returning
// the mean and max statistic over bins where both sides have at least two
// samples. It is the sketch path's equivalence gate: accept the sketch when
// mean ≤ KSCritical(nA, nB, α) for the replicate counts involved.
func KSBinsStat(a, b *CurveCI) (mean, maxStat float64, bins int, err error) {
	if a.BinSamples == nil || b.BinSamples == nil {
		return 0, 0, 0, errors.New("core: KS gate needs KeepSamples on both estimates")
	}
	if len(a.BinSamples) != len(b.BinSamples) {
		return 0, 0, 0, errors.New("core: KS gate bin count mismatch")
	}
	var sum float64
	for i := range a.BinSamples {
		x, y := a.BinSamples[i], b.BinSamples[i]
		if len(x) < 2 || len(y) < 2 {
			continue
		}
		d := ksTwoSample(x, y)
		sum += d
		if d > maxStat {
			maxStat = d
		}
		bins++
	}
	if bins == 0 {
		return 0, 0, 0, errors.New("core: KS gate found no comparable bins")
	}
	return sum / float64(bins), maxStat, bins, nil
}

// ksTwoSample is the two-sample KS statistic sup|F1−F2|; inputs are copied
// and sorted.
func ksTwoSample(x, y []float64) float64 {
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var d float64
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		// Advance both sides past a shared value together: the empirical
		// CDFs only disagree BETWEEN distinct values, and measuring mid-tie
		// reports a spurious gap (two identical samples would score 1.0).
		v := math.Min(xs[i], ys[j])
		for i < len(xs) && xs[i] == v {
			i++
		}
		for j < len(ys) && ys[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(xs)) - float64(j)/float64(len(ys)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the two-sample KS rejection threshold
// c(α)·sqrt((n+m)/(n·m)) for α in {0.10, 0.05, 0.01} (nearest taken).
func KSCritical(n, m int, alpha float64) float64 {
	c := 1.358 // α = 0.05
	switch {
	case alpha >= 0.10:
		c = 1.224
	case alpha <= 0.01:
		c = 1.628
	}
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}
