package core

import (
	"math"
	"sort"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

// Incremental is a fully delta-maintained plain NLP estimation: columns,
// biased histogram, unbiased draw schedule AND the unbiased histogram
// itself are all folded forward, so re-estimating after a fold of d records
// costs O(d·log n) maintenance plus curve finishing — not the O(n + draws)
// rescan-and-resweep of the batch path. The produced curve is bit-identical
// to EstimateColumns over the same columns.
//
// The unbiased histogram decomposes into a maintained "stable" part and a
// small volatile remainder:
//
//   - Every draw whose adopted latency is a deterministic function of the
//     columns (a unique nearest sample, no exact-midpoint tie) contributes
//     to the stable histogram. Folding a record at time t can only change
//     draws whose instants fall between t's old distinct-time neighbours —
//     anything farther already has a strictly closer sample — so the fold
//     subtracts the affected draws' old values and re-adds their new ones.
//     Weight-1 adds and subtracts are exact, so the stable histogram stays
//     bit-identical to a full resweep.
//   - Draws that consume tie-break randomness (exact midpoint, or an
//     equal-timestamp run of samples) depend on the plan's auxSeed, which
//     moves whenever the draw count grows. Their sorted ranks are tracked
//     in auxDep and the draws are re-evaluated per estimate against the
//     current auxSeed — typically a handful on millisecond-resolution data.
//
// When the data is tie-heavy (coarse timestamps put a large fraction of
// draws in auxDep) the per-estimate re-evaluation would approach full-sweep
// cost with worse constants, so the state degrades — permanently, per
// instance — to the batch sweep over the retained key plan. Results are
// identical either way.
//
// An Incremental is single-goroutine state; callers serialize access (the
// live engine pins one behind each combo's single-flight slot).
type Incremental struct {
	e    *Estimator
	sum  Summary
	plan UnbiasedPlan
	sc   Scratch

	stValid   bool // u/auxDep reflect (sum, plan)
	fullSweep bool // degenerate tie-heavy data: batch sweep per estimate
	u         *histogram.Histogram
	auxDep    []int32 // sorted ranks whose draws need per-estimate aux

	// Fold/estimate scratch, retained across calls.
	intervals [][2]uint64
	survivors []int32
	uOut      *histogram.Histogram

	// Sketch, when non-nil, is a mergeable Poisson-bootstrap CI sketch
	// maintained in lockstep with the stable sweep state (see BootSketch).
	Sketch *BootSketch
	// CI, when non-nil, retains exact block-bootstrap inputs across folds
	// (see CIState).
	CI *CIState
}

// NewIncremental returns an empty delta-maintained estimation.
func (e *Estimator) NewIncremental() *Incremental {
	return &Incremental{
		e:    e,
		sum:  Summary{B: e.newHist()},
		u:    e.newHist(),
		uOut: e.newHist(),
	}
}

// Len returns the number of records folded in.
func (inc *Incremental) Len() int { return inc.sum.Len() }

// Columns exposes the maintained (time, seq)-sorted columns read-only, for
// estimator paths that are not delta-maintained (time-normalized mode).
func (inc *Incremental) Columns() ([]timeutil.Millis, []float64) {
	return inc.sum.Times, inc.sum.Lats
}

// Summary exposes the maintained summary read-only.
func (inc *Incremental) Summary() *Summary { return &inc.sum }

// Fold merges a (time, seq)-sorted delta of usable records. Deltas that
// keep the observation window unchanged are folded into the sweep state in
// O(d·log n); deltas that move the window (or the first fold) invalidate it
// for lazy rebuild at the next estimate.
func (inc *Incremental) Fold(dTimes []timeutil.Millis, dLats []float64, dSeqs []uint64) error {
	if len(dTimes) == 0 {
		return nil
	}
	n := inc.sum.Len()
	windowKept := n > 0 &&
		dTimes[0] >= inc.sum.Times[0] &&
		dTimes[len(dTimes)-1] <= inc.sum.Times[n-1]
	if inc.CI != nil {
		inc.CI.foldRecords(dTimes, dLats, windowKept)
	}
	if !inc.stValid || inc.fullSweep || !windowKept {
		if err := inc.sum.Fold(dTimes, dLats, dSeqs); err != nil {
			return err
		}
		inc.stValid = false
		if inc.Sketch != nil {
			inc.Sketch.invalidate()
		}
		return nil
	}
	return inc.foldIncremental(dTimes, dLats, dSeqs)
}

// foldIncremental updates the stable sweep state for a window-preserving
// delta. Order matters: old draw values are retracted against the OLD
// columns and OLD key schedule, then columns fold and the key schedule
// extends, then affected draws are re-evaluated against the new state.
func (inc *Incremental) foldIncremental(dTimes []timeutil.Millis, dLats []float64, dSeqs []uint64) error {
	lo := inc.sum.Times[0]
	span := inc.plan.span

	// 1. Affected key intervals [a, b] (inclusive, in offset space): for a
	// delta record at t, only draws between t's old distinct-time
	// neighbours can change assignment, midpoint status, or adopted-run
	// size. Delta times ascend, so intervals merge in one pass.
	inc.intervals = inc.intervals[:0]
	for _, t := range dTimes {
		a, b := neighborInterval(inc.sum.Times, lo, span, t)
		if k := len(inc.intervals); k > 0 && a <= inc.intervals[k-1][1] {
			if b > inc.intervals[k-1][1] {
				inc.intervals[k-1][1] = b
			}
			continue
		}
		inc.intervals = append(inc.intervals, [2]uint64{a, b})
	}

	// 2. OLD PASS: retract affected draws. Aux-independent draws subtract
	// their old adopted value from the stable histogram; aux-dependent
	// ranks inside an interval are consumed (re-classified in the new
	// pass), ranks outside survive with their dependence status intact.
	inc.survivors = inc.survivors[:0]
	dep := 0 // cursor into auxDep
	for _, iv := range inc.intervals {
		i1, i2 := keyRange(inc.plan.sorted, iv[0], iv[1])
		for ; dep < len(inc.auxDep) && int(inc.auxDep[dep]) < i1; dep++ {
			inc.survivors = append(inc.survivors, inc.auxDep[dep])
		}
		for ; dep < len(inc.auxDep) && int(inc.auxDep[dep]) < i2; dep++ {
		}
		classifyKeys(inc.sum.Times, lo, inc.plan.sorted, i1, i2,
			func(_, j int, isDep bool) {
				if !isDep {
					v := inc.sum.Lats[j]
					inc.u.Sub(v)
					if inc.Sketch != nil {
						inc.Sketch.retractDraw(v, inc.sum.Seqs[j], 1)
					}
				}
			})
	}
	inc.survivors = append(inc.survivors, inc.auxDep[dep:]...)

	// 3. Stage the schedule extension for the grown draw count, then shift
	// surviving ranks by the staged keys inserted below them. Survivor
	// ranks ascend, hence so do their key values: one two-pointer pass.
	newDraws := drawCount(inc.sum.Len()+len(dTimes), inc.e.opts.UnbiasedPerSample)
	tail := inc.plan.stageExtend(newDraws)
	tp := 0
	for i, r := range inc.survivors {
		v := inc.plan.sorted[r]
		for tp < len(tail) && tail[tp] < v {
			tp++
		}
		inc.survivors[i] = r + int32(tp)
	}

	// 4. Fold columns (+ biased histogram), commit the key merge.
	if err := inc.sum.Fold(dTimes, dLats, dSeqs); err != nil {
		return err
	}
	if inc.Sketch != nil {
		inc.Sketch.foldRecords(dLats, dSeqs)
	}
	inc.plan.commitExtend()

	// 5. NEW PASS: re-evaluate every key inside the affected intervals —
	// old keys and freshly staged ones alike — against the new columns.
	inc.auxDep = append(inc.auxDep[:0], inc.survivors...)
	for _, iv := range inc.intervals {
		i1, i2 := keyRange(inc.plan.sorted, iv[0], iv[1])
		classifyKeys(inc.sum.Times, lo, inc.plan.sorted, i1, i2,
			func(rank, j int, isDep bool) {
				if isDep {
					inc.auxDep = append(inc.auxDep, int32(rank))
				} else {
					v := inc.sum.Lats[j]
					inc.u.Add(v)
					if inc.Sketch != nil {
						inc.Sketch.addDraw(v, inc.sum.Seqs[j], 1)
					}
				}
			})
	}

	// 6. Staged keys OUTSIDE every interval land in unchanged
	// neighbourhoods: classify each distinct value once (equal keys share
	// assignment and dependence, and staged duplicates of a retained value
	// rank after it).
	ivp := 0
	for i := 0; i < len(tail); {
		v := tail[i]
		m := 1
		for i+m < len(tail) && tail[i+m] == v {
			m++
		}
		i += m
		for ivp < len(inc.intervals) && inc.intervals[ivp][1] < v {
			ivp++
		}
		if ivp < len(inc.intervals) && inc.intervals[ivp][0] <= v {
			continue // inside an interval: already handled by the new pass
		}
		first := sort.Search(len(inc.plan.sorted), func(j int) bool { return inc.plan.sorted[j] >= v })
		eqAll := sort.Search(len(inc.plan.sorted)-first, func(j int) bool { return inc.plan.sorted[first+j] > v })
		start := first + eqAll - m // staged duplicates sort last
		classifyKeys(inc.sum.Times, lo, inc.plan.sorted, first, first+1,
			func(_, j int, isDep bool) {
				if isDep {
					for r := 0; r < m; r++ {
						inc.auxDep = append(inc.auxDep, int32(start+r))
					}
				} else {
					val := inc.sum.Lats[j]
					inc.u.AddWeighted(val, float64(m))
					if inc.Sketch != nil {
						inc.Sketch.addDraw(val, inc.sum.Seqs[j], m)
					}
				}
			})
	}
	slices32Sort(inc.auxDep)
	inc.checkDensity()
	return nil
}

// checkDensity degrades to the batch sweep when per-estimate aux
// re-evaluation would rival a full sweep.
func (inc *Incremental) checkDensity() {
	if len(inc.auxDep)*8 > len(inc.plan.sorted) {
		inc.fullSweep = true
		inc.stValid = false
		if inc.Sketch != nil {
			inc.Sketch.invalidate()
		}
	}
}

// EstimatePlain computes the plain pooled NLP curve over the folded
// records, bit-identical to EstimateColumns over the same columns.
func (inc *Incremental) EstimatePlain() (*Curve, error) {
	defer observeEstimate(time.Now())
	n := inc.sum.Len()
	if n == 0 {
		return nil, errEmptyRecords
	}
	e := inc.e
	sp := e.trace.StartChild("estimate_incremental")
	defer sp.End()
	sp.SetAttr("records", n)

	lo := inc.sum.Times[0]
	hi := inc.sum.Times[n-1] + 1
	draws := drawCount(n, e.opts.UnbiasedPerSample)
	inc.plan.update(e.opts.Seed, uint64(hi-lo), draws)
	if inc.stValid && inc.plan.reused == 0 && draws > 0 {
		inc.stValid = false // plan regenerated under us: seed or span moved
	}

	if !inc.stValid && !inc.fullSweep {
		inc.rebuildSweep()
	}
	if inc.fullSweep {
		u := inc.sc.unbiased(e)
		sweepSortedKeys(inc.sum.Times, inc.sum.Lats, lo, inc.plan.sorted, inc.plan.auxSeed, u)
		sp.SetAttr("sweep", "full")
		return e.finishCurve(sp, inc.sum.B, u, n, draws)
	}

	// Stable histogram + the volatile aux-dependent remainder.
	if err := inc.uOut.CopyFrom(inc.u); err != nil {
		return nil, err
	}
	for _, r := range inc.auxDep {
		aux := rng.Mix64(inc.plan.auxSeed + uint64(r))
		j := drawKeyIndex(inc.sum.Times, lo, inc.plan.sorted[r], aux)
		inc.uOut.Add(inc.sum.Lats[j])
	}
	sp.SetAttr("aux_dep", len(inc.auxDep))
	return e.finishCurve(sp, inc.sum.B, inc.uOut, n, draws)
}

// rebuildSweep classifies the full schedule from scratch (first estimate,
// or a fold that moved the observation window).
func (inc *Incremental) rebuildSweep() {
	if len(inc.plan.sorted) > math.MaxInt32 {
		inc.fullSweep = true
		return
	}
	inc.u.Reset()
	inc.auxDep = inc.auxDep[:0]
	lo := inc.sum.Times[0]
	classifyKeys(inc.sum.Times, lo, inc.plan.sorted, 0, len(inc.plan.sorted),
		func(rank, j int, isDep bool) {
			if isDep {
				inc.auxDep = append(inc.auxDep, int32(rank))
			} else {
				inc.u.Add(inc.sum.Lats[j])
			}
		})
	inc.stValid = true
	inc.checkDensity()
	if inc.Sketch != nil && inc.stValid {
		inc.Sketch.rebuild(inc)
	}
}

// neighborInterval returns the inclusive offset interval [a, b] bounded by
// t's distinct-time neighbours in the sorted column (window edges clamp to
// the full span). Every draw whose assignment the insertion of t can change
// lies within it.
func neighborInterval(times []timeutil.Millis, lo timeutil.Millis, span uint64, t timeutil.Millis) (a, b uint64) {
	i := sort.Search(len(times), func(j int) bool { return times[j] >= t })
	if i > 0 {
		a = uint64(times[i-1] - lo)
	}
	j := sort.Search(len(times), func(k int) bool { return times[k] > t })
	if j < len(times) {
		b = uint64(times[j] - lo)
	} else {
		b = span - 1
	}
	return a, b
}

// keyRange returns the half-open index range of sorted keys within the
// inclusive value interval [a, b].
func keyRange(keys []uint64, a, b uint64) (int, int) {
	i1 := sort.Search(len(keys), func(i int) bool { return keys[i] >= a })
	i2 := sort.Search(len(keys), func(i int) bool { return keys[i] > b })
	return i1, i2
}

// classifyKeys evaluates sorted draw keys[i1:i2) against time-sorted
// columns, reporting each draw's adopted record index and whether its
// adoption consumes tie-break randomness (exact midpoint, or an
// equal-timestamp run longer than one). For dependent draws j is -1 — the
// caller re-evaluates them with drawKeyIndex when the aux seed is known.
func classifyKeys(times []timeutil.Millis, lo timeutil.Millis, keys []uint64, i1, i2 int, fn func(rank, j int, dep bool)) {
	if i1 >= i2 || len(times) == 0 {
		return
	}
	nRec := len(times)
	t0 := lo + timeutil.Millis(keys[i1])
	idx := sort.Search(nRec, func(i int) bool { return times[i] >= t0 })
	for k := i1; k < i2; k++ {
		t := lo + timeutil.Millis(keys[k])
		for idx < nRec && times[idx] < t {
			idx++
		}
		var j int
		switch {
		case idx == 0:
			j = 0
		case idx == nRec:
			j = nRec - 1
		default:
			dLeft := t - times[idx-1]
			dRight := times[idx] - t
			switch {
			case dLeft < dRight:
				j = idx - 1
			case dRight < dLeft:
				j = idx
			default:
				fn(k, -1, true) // exact midpoint: side choice needs aux
				continue
			}
		}
		tj := times[j]
		if (j > 0 && times[j-1] == tj) || (j+1 < nRec && times[j+1] == tj) {
			fn(k, -1, true) // run pick needs aux
			continue
		}
		fn(k, j, false)
	}
}

// drawKeyIndex evaluates one draw key with an explicit aux word, reproducing
// sweepSortedKeys' record choice bit for bit: the aux's top bit breaks exact
// midpoints, and aux mod the run size picks within an equal-timestamp run.
func drawKeyIndex(times []timeutil.Millis, lo timeutil.Millis, key uint64, aux uint64) int {
	nRec := len(times)
	t := lo + timeutil.Millis(key)
	idx := sort.Search(nRec, func(i int) bool { return times[i] >= t })
	var j int
	switch {
	case idx == 0:
		j = 0
	case idx == nRec:
		j = nRec - 1
	default:
		dLeft := t - times[idx-1]
		dRight := times[idx] - t
		switch {
		case dLeft < dRight:
			j = idx - 1
		case dRight < dLeft:
			j = idx
		default:
			if aux>>63 == 0 {
				j = idx - 1
			} else {
				j = idx
			}
		}
	}
	tj := times[j]
	rLo, rHi := j, j
	for rLo > 0 && times[rLo-1] == tj {
		rLo--
	}
	for rHi+1 < nRec && times[rHi+1] == tj {
		rHi++
	}
	if rHi == rLo {
		return rLo
	}
	return rLo + int(aux%uint64(rHi-rLo+1))
}

// slices32Sort sorts ranks ascending (insertion sort: the slice is the
// concatenation of a few sorted runs and is nearly ordered).
func slices32Sort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
