package core

import (
	"math"
	"runtime"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

// curvesEqual asserts two curves are bitwise identical in every derived
// series (not merely close: worker scheduling must not leak into results).
func curvesEqual(t *testing.T, name string, a, b *Curve) {
	t.Helper()
	if len(a.NLP) != len(b.NLP) {
		t.Fatalf("%s: bin count differs: %d vs %d", name, len(a.NLP), len(b.NLP))
	}
	for i := range a.NLP {
		if a.NLP[i] != b.NLP[i] && !(math.IsNaN(a.NLP[i]) && math.IsNaN(b.NLP[i])) {
			t.Fatalf("%s: NLP[%d] differs: %v vs %v", name, i, a.NLP[i], b.NLP[i])
		}
		if a.Valid[i] != b.Valid[i] {
			t.Fatalf("%s: Valid[%d] differs", name, i)
		}
		if a.Biased[i] != b.Biased[i] || a.Unbiased[i] != b.Unbiased[i] {
			t.Fatalf("%s: distribution bin %d differs", name, i)
		}
	}
}

func workerVariants() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestEstimateWorkerInvariance pins the estimator outputs to be bitwise
// identical at any worker count, for both the pooled and the
// time-normalized levels.
func TestEstimateWorkerInvariance(t *testing.T) {
	records := confoundedRecords(5)
	var basePlain, baseNorm *Curve
	for _, w := range workerVariants() {
		e := testEstimator(t, func(o *Options) {
			o.ReferenceMS = 300
			o.Workers = w
		})
		plain, err := e.Estimate(records)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := e.EstimateTimeNormalized(records)
		if err != nil {
			t.Fatal(err)
		}
		if basePlain == nil {
			basePlain, baseNorm = plain, norm
			continue
		}
		curvesEqual(t, "estimate", basePlain, plain)
		curvesEqual(t, "estimate_time_normalized", baseNorm, norm)
	}
}

// TestEstimateCIWorkerInvariance pins the bootstrap bounds to be bitwise
// identical at any worker count (plain and time-normalized replicates).
func TestEstimateCIWorkerInvariance(t *testing.T) {
	records := confoundedRecords(5)
	for _, normalized := range []bool{false, true} {
		var base *CurveCI
		for _, w := range workerVariants() {
			e := testEstimator(t, func(o *Options) {
				o.ReferenceMS = 300
				o.Workers = w
			})
			opts := smallCIOptions()
			opts.TimeNormalized = normalized
			opts.Workers = w
			ci, err := e.EstimateCI(records, opts)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = ci
				continue
			}
			if ci.Replicates != base.Replicates {
				t.Fatalf("normalized=%v workers=%d: replicates %d vs %d",
					normalized, w, ci.Replicates, base.Replicates)
			}
			curvesEqual(t, "ci point", base.Curve, ci.Curve)
			for i := range base.Lower {
				sameLo := base.Lower[i] == ci.Lower[i] || (math.IsNaN(base.Lower[i]) && math.IsNaN(ci.Lower[i]))
				sameHi := base.Upper[i] == ci.Upper[i] || (math.IsNaN(base.Upper[i]) && math.IsNaN(ci.Upper[i]))
				if !sameLo || !sameHi {
					t.Fatalf("normalized=%v workers=%d: bounds bin %d differ: [%v,%v] vs [%v,%v]",
						normalized, w, i, base.Lower[i], base.Upper[i], ci.Lower[i], ci.Upper[i])
				}
			}
		}
	}
}

// TestEstimateCIRerunReproducible guards the basic same-config determinism
// the worker invariance builds on.
func TestEstimateCIRerunReproducible(t *testing.T) {
	records := confoundedRecords(9)
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	a, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, "rerun point", a.Curve, b.Curve)
	for i := range a.Lower {
		if a.Lower[i] != b.Lower[i] && !(math.IsNaN(a.Lower[i]) && math.IsNaN(b.Lower[i])) {
			t.Fatalf("rerun bounds differ at bin %d", i)
		}
	}
}

// TestSweepMatchesPerDrawDistribution checks the batch sweep sampler is
// distributionally faithful to the per-draw reference implementation: a
// two-sample KS statistic over the binned CDFs must stay under the
// large-sample 1% critical value.
func TestSweepMatchesPerDrawDistribution(t *testing.T) {
	src := rng.New(99)
	var recs []timeutil.Millis
	var lats []float64
	tms := timeutil.Millis(0)
	for i := 0; i < 4000; i++ {
		tms += timeutil.Millis(src.Exp(1.0/3000.0)) + 1
		lat := src.LogNormal(math.Log(400), 0.5)
		recs = append(recs, tms)
		lats = append(lats, lat)
		if i%7 == 0 { // duplicate timestamps exercise the tie-break path
			recs = append(recs, tms)
			lats = append(lats, lat*2)
		}
	}
	s := &unbiasedSampler{times: recs, latencies: lats}
	lo := recs[0]
	hi := recs[len(recs)-1] + 1
	const n = 120000

	e, err := NewEstimator(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	perDraw := e.newHist()
	src1 := rng.New(5)
	for k := 0; k < n; k++ {
		perDraw.Add(s.draw(lo, hi, src1))
	}
	sweep := e.newHist()
	src2 := rng.New(5)
	s.fillSweep(lo, hi, n, src2, nil, sweep)

	f1, err := perDraw.Fractions()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sweep.Fractions()
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2, ks float64
	for i := range f1 {
		c1 += f1[i]
		c2 += f2[i]
		if d := math.Abs(c1 - c2); d > ks {
			ks = d
		}
	}
	// Two-sample KS critical value at alpha=0.01 for equal sample sizes.
	crit := 1.63 * math.Sqrt(2.0/float64(n))
	if ks > crit {
		t.Fatalf("KS statistic %v exceeds critical value %v: sweep sampler is not distributionally faithful", ks, crit)
	}
}
