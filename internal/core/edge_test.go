package core

import (
	"math"
	"testing"
)

// TestCurveAtSingleBin is a regression test: At used to index BinCenters[1]
// unconditionally to derive the bin width and panicked on single-bin curves.
func TestCurveAtSingleBin(t *testing.T) {
	c := &Curve{
		BinCenters: []float64{5},
		NLP:        []float64{0.7},
		Valid:      []bool{true},
	}
	for _, ms := range []float64{-100, 0, 5, 1e9} {
		v, ok := c.At(ms)
		if !ok || v != 0.7 {
			t.Fatalf("At(%v) = %v, %v; want 0.7, true", ms, v, ok)
		}
	}
	empty := &Curve{}
	if _, ok := empty.At(10); ok {
		t.Fatal("empty curve reported a valid bin")
	}
}

// TestCurveCIBoundsSingleBin is the CurveCI counterpart of the single-bin
// regression: Bounds derived the bin width from BinCenters[1] too.
func TestCurveCIBoundsSingleBin(t *testing.T) {
	ci := &CurveCI{
		Curve: &Curve{BinCenters: []float64{5}},
		Lower: []float64{0.4},
		Upper: []float64{0.9},
	}
	for _, ms := range []float64{-10, 5, 5000} {
		lo, hi, ok := ci.Bounds(ms)
		if !ok || lo != 0.4 || hi != 0.9 {
			t.Fatalf("Bounds(%v) = %v, %v, %v; want 0.4, 0.9, true", ms, lo, hi, ok)
		}
	}
	nan := &CurveCI{
		Curve: &Curve{BinCenters: []float64{5}},
		Lower: []float64{math.NaN()},
		Upper: []float64{math.NaN()},
	}
	if _, _, ok := nan.Bounds(5); ok {
		t.Fatal("NaN bounds reported as supported")
	}
	empty := &CurveCI{Curve: &Curve{}}
	if _, _, ok := empty.Bounds(5); ok {
		t.Fatal("empty CI reported supported bounds")
	}
}

func TestQuantileSortedEdges(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"single element q=0", []float64{3}, 0, 3},
		{"single element q=0.5", []float64{3}, 0.5, 3},
		{"single element q=1", []float64{3}, 1, 3},
		{"q=0 takes min", []float64{1, 2, 3}, 0, 1},
		{"q=1 takes max", []float64{1, 2, 3}, 1, 3},
		{"exact position no interpolation", []float64{1, 2, 3}, 0.5, 2},
		{"exact position on five", []float64{0, 1, 2, 3, 4}, 0.25, 1},
		{"interpolated midpoint", []float64{1, 2}, 0.5, 1.5},
		{"interpolated quarter", []float64{0, 4}, 0.25, 1},
		{"interpolated between ranks", []float64{10, 20, 40}, 0.75, 30},
	}
	for _, tc := range cases {
		if got := quantileSorted(tc.sorted, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: quantileSorted(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
}

func TestInterpolateHolesEdges(t *testing.T) {
	eq := func(name string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: [%d] = %v, want %v (full: %v)", name, i, got[i], want[i], got)
			}
		}
	}

	if out := interpolateHoles([]float64{1, 2}, []bool{false, false}); out != nil {
		t.Fatalf("all-invalid input should return nil, got %v", out)
	}
	eq("single valid element",
		interpolateHoles([]float64{7}, []bool{true}), []float64{7})
	if out := interpolateHoles([]float64{7}, []bool{false}); out != nil {
		t.Fatalf("single invalid element should return nil, got %v", out)
	}
	eq("leading hole back-fills",
		interpolateHoles([]float64{9, 9, 4, 5}, []bool{false, false, true, true}),
		[]float64{4, 4, 4, 5})
	eq("trailing hole forward-fills",
		interpolateHoles([]float64{4, 5, 9, 9}, []bool{true, true, false, false}),
		[]float64{4, 5, 5, 5})
	eq("interior hole interpolates linearly",
		interpolateHoles([]float64{1, 9, 9, 4}, []bool{true, false, false, true}),
		[]float64{1, 2, 3, 4})
	eq("only one valid anchor fills everything",
		interpolateHoles([]float64{9, 3, 9}, []bool{false, true, false}),
		[]float64{3, 3, 3})
}
