package core

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// incStream synthesizes an initial batch plus a sequence of small deltas
// whose times stay inside the initial observation window (the live dirty
// case), with dupRate of delta times duplicating an already-used instant to
// exercise equal-timestamp runs.
type incStream struct {
	src     *rng.Source
	horizon timeutil.Millis
	used    []timeutil.Millis
	seq     uint64
	dupRate float64
}

func newIncStream(seed uint64, horizon timeutil.Millis, dupRate float64) *incStream {
	return &incStream{src: rng.New(seed), horizon: horizon, dupRate: dupRate}
}

// initial returns n sorted records pinning the window edges at 0 and
// horizon-1.
func (g *incStream) initial(n int) ([]timeutil.Millis, []float64, []uint64) {
	times := make([]timeutil.Millis, n)
	lats := make([]float64, n)
	seqs := make([]uint64, n)
	times[0] = 0
	times[1] = g.horizon - 1
	for i := 2; i < n; i++ {
		times[i] = timeutil.Millis(g.src.Uint64n(uint64(g.horizon)))
	}
	for i := range lats {
		lats[i] = 50 + 2500*g.src.Float64()
		g.seq++
		seqs[i] = g.seq
	}
	sort.Sort(&colSorter{times, lats, seqs})
	g.used = append(g.used, times...)
	return times, lats, seqs
}

// delta returns d sorted in-window records.
func (g *incStream) delta(d int) ([]timeutil.Millis, []float64, []uint64) {
	times := make([]timeutil.Millis, d)
	lats := make([]float64, d)
	seqs := make([]uint64, d)
	for i := 0; i < d; i++ {
		if g.src.Bool(g.dupRate) && len(g.used) > 0 {
			times[i] = g.used[g.src.Intn(len(g.used))]
		} else {
			times[i] = 1 + timeutil.Millis(g.src.Uint64n(uint64(g.horizon-2)))
		}
		lats[i] = 50 + 2500*g.src.Float64()
		g.seq++
		seqs[i] = g.seq
	}
	sort.Sort(&colSorter{times, lats, seqs})
	g.used = append(g.used, times...)
	return times, lats, seqs
}

type colSorter struct {
	times []timeutil.Millis
	lats  []float64
	seqs  []uint64
}

func (c *colSorter) Len() int { return len(c.times) }
func (c *colSorter) Less(i, j int) bool {
	return summaryLess(c.times[i], c.seqs[i], c.times[j], c.seqs[j])
}
func (c *colSorter) Swap(i, j int) {
	c.times[i], c.times[j] = c.times[j], c.times[i]
	c.lats[i], c.lats[j] = c.lats[j], c.lats[i]
	c.seqs[i], c.seqs[j] = c.seqs[j], c.seqs[i]
}

// TestIncrementalMatchesBatch folds a stream of small in-window deltas and
// checks that every EstimatePlain is byte-identical to the batch
// EstimateColumns over the same accumulated columns, while the incremental
// sweep state stays live (no silent degradation to full sweeps).
func TestIncrementalMatchesBatch(t *testing.T) {
	e := testEstimator(t, nil)
	g := newIncStream(41, 2*timeutil.MillisPerDay, 0.3)
	inc := e.NewIncremental()
	ref := &Summary{}

	ts, ls, qs := g.initial(4000)
	if err := inc.Fold(ts, ls, qs); err != nil {
		t.Fatal(err)
	}
	if err := ref.Fold(ts, ls, qs); err != nil {
		t.Fatal(err)
	}

	check := func(step int) {
		t.Helper()
		got, err := inc.EstimatePlain()
		if err != nil {
			t.Fatalf("step %d: incremental: %v", step, err)
		}
		want, err := e.EstimateColumns(ref.Times, ref.Lats, nil)
		if err != nil {
			t.Fatalf("step %d: batch: %v", step, err)
		}
		if !bytes.Equal(curveBytes(t, got), curveBytes(t, want)) {
			t.Fatalf("step %d: incremental curve diverged from batch (n=%d)", step, ref.Len())
		}
	}
	check(0)
	if !inc.stValid {
		t.Fatal("sweep state not built by first estimate")
	}

	for step := 1; step <= 120; step++ {
		d := 1 + g.src.Intn(4)
		ts, ls, qs := g.delta(d)
		if err := inc.Fold(ts, ls, qs); err != nil {
			t.Fatal(err)
		}
		if err := ref.Fold(ts, ls, qs); err != nil {
			t.Fatal(err)
		}
		check(step)
	}
	if inc.fullSweep {
		t.Fatal("incremental state degraded to full sweeps on tie-light data")
	}
	if !inc.stValid {
		t.Fatal("sweep state invalid after in-window folds")
	}
	if len(inc.auxDep) == 0 {
		t.Log("note: no aux-dependent draws were exercised") // informational
	}
}

// TestIncrementalTieHeavy quantizes times onto a tiny grid so nearly every
// draw adopts from an equal-timestamp run. The state must degrade to the
// batch sweep — and remain byte-identical to it throughout.
func TestIncrementalTieHeavy(t *testing.T) {
	e := testEstimator(t, nil)
	src := rng.New(99)
	horizon := timeutil.Millis(4000)
	grid := timeutil.Millis(200)
	inc := e.NewIncremental()
	ref := &Summary{}
	var seq uint64

	mk := func(n int, pinEdges bool) ([]timeutil.Millis, []float64, []uint64) {
		ts := make([]timeutil.Millis, n)
		ls := make([]float64, n)
		qs := make([]uint64, n)
		for i := range ts {
			ts[i] = timeutil.Millis(src.Uint64n(uint64(horizon/grid))) * grid
			ls[i] = 50 + 2500*src.Float64()
			seq++
			qs[i] = seq
		}
		if pinEdges {
			ts[0] = 0
			ts[1] = horizon - 1
		}
		sort.Sort(&colSorter{ts, ls, qs})
		return ts, ls, qs
	}

	ts, ls, qs := mk(500, true)
	if err := inc.Fold(ts, ls, qs); err != nil {
		t.Fatal(err)
	}
	if err := ref.Fold(ts, ls, qs); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 12; step++ {
		got, err := inc.EstimatePlain()
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.EstimateColumns(ref.Times, ref.Lats, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(curveBytes(t, got), curveBytes(t, want)) {
			t.Fatalf("step %d: tie-heavy incremental diverged from batch", step)
		}
		dts, dls, dqs := mk(3, false)
		if err := inc.Fold(dts, dls, dqs); err != nil {
			t.Fatal(err)
		}
		if err := ref.Fold(dts, dls, dqs); err != nil {
			t.Fatal(err)
		}
	}
	if !inc.fullSweep {
		t.Fatal("tie-heavy data did not trigger the full-sweep degradation")
	}
}

// TestIncrementalWindowMove folds a delta that extends the observation
// window; the sweep state must rebuild and still match batch.
func TestIncrementalWindowMove(t *testing.T) {
	e := testEstimator(t, nil)
	g := newIncStream(7, timeutil.MillisPerDay, 0)
	inc := e.NewIncremental()
	ref := &Summary{}

	ts, ls, qs := g.initial(2000)
	for i := range ts {
		ts[i] += timeutil.MillisPerHour // leave room below the window
	}
	if err := inc.Fold(ts, ls, qs); err != nil {
		t.Fatal(err)
	}
	if err := ref.Fold(ts, ls, qs); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.EstimatePlain(); err != nil {
		t.Fatal(err)
	}
	if !inc.stValid {
		t.Fatal("state not valid after estimate")
	}

	// Window-moving delta: earlier than everything held.
	dts := []timeutil.Millis{5}
	dls := []float64{123}
	dqs := []uint64{1 << 40}
	if err := inc.Fold(dts, dls, dqs); err != nil {
		t.Fatal(err)
	}
	if err := ref.Fold(dts, dls, dqs); err != nil {
		t.Fatal(err)
	}
	if inc.stValid {
		t.Fatal("window move must invalidate the sweep state")
	}
	got, err := inc.EstimatePlain()
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.EstimateColumns(ref.Times, ref.Lats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, got), curveBytes(t, want)) {
		t.Fatal("post-rebuild incremental curve diverged from batch")
	}
	if !inc.stValid {
		t.Fatal("state must rebuild lazily at the next estimate")
	}
}

// boundsEqual compares CI bounds bit for bit (NaN == NaN).
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestEstimateCIIncrementalMatchesBatch folds deltas and checks that the
// retained-state bootstrap (block hists delta-folded, key plan extended,
// scratch pooled) returns bounds bit-identical to the batch bootstrap.
func TestEstimateCIIncrementalMatchesBatch(t *testing.T) {
	e := testEstimator(t, nil)
	g := newIncStream(17, 2*timeutil.MillisPerDay, 0.2)
	inc := e.NewIncremental()
	ref := &Summary{}

	opts := DefaultCIOptions()
	opts.Resamples = 12

	fold := func(ts []timeutil.Millis, ls []float64, qs []uint64) {
		t.Helper()
		if err := inc.Fold(ts, ls, qs); err != nil {
			t.Fatal(err)
		}
		if err := ref.Fold(ts, ls, qs); err != nil {
			t.Fatal(err)
		}
	}
	check := func(step int) {
		t.Helper()
		got, err := e.EstimateCIIncremental(inc, opts)
		if err != nil {
			t.Fatalf("step %d: incremental CI: %v", step, err)
		}
		want, err := e.EstimateCIColumns(ref.Times, ref.Lats, opts)
		if err != nil {
			t.Fatalf("step %d: batch CI: %v", step, err)
		}
		if !bytes.Equal(curveBytes(t, got.Curve), curveBytes(t, want.Curve)) {
			t.Fatalf("step %d: point estimates diverged", step)
		}
		if !boundsEqual(got.Lower, want.Lower) || !boundsEqual(got.Upper, want.Upper) {
			t.Fatalf("step %d: bootstrap bounds diverged", step)
		}
		if got.Replicates != want.Replicates {
			t.Fatalf("step %d: replicate counts diverged: %d vs %d", step, got.Replicates, want.Replicates)
		}
	}

	fold(g.initial(3000))
	check(0)
	if inc.CI == nil || !inc.CI.valid {
		t.Fatal("CI state not retained after first incremental estimate")
	}
	for step := 1; step <= 6; step++ {
		fold(g.delta(1 + g.src.Intn(5)))
		check(step)
	}
}

// TestSketchMergeability checks that a delta-maintained sketch is
// bit-identical to a from-scratch sketch over the same data — the property
// that lets the live path trust folded sketch state — and that on
// well-behaved data the sketch bounds pass the KS equivalence gate against
// the exact block bootstrap.
func TestSketchMergeability(t *testing.T) {
	e := testEstimator(t, nil)
	const reps = 40
	const sketchSeed = 7

	build := func(foldDeltas bool) (*Incremental, *CurveCI) {
		g := newIncStream(23, 2*timeutil.MillisPerDay, 0.25)
		inc := e.NewIncremental()
		inc.Sketch = e.NewBootSketch(reps, sketchSeed)
		ts, ls, qs := g.initial(3000)
		if err := inc.Fold(ts, ls, qs); err != nil {
			t.Fatal(err)
		}
		var deltas [][3]interface{}
		for i := 0; i < 40; i++ {
			dts, dls, dqs := g.delta(1 + g.src.Intn(4))
			deltas = append(deltas, [3]interface{}{dts, dls, dqs})
		}
		if foldDeltas {
			// Build sweep+sketch state FIRST, then fold deltas through the
			// incremental maintenance path.
			if _, err := inc.EstimatePlain(); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range deltas {
			if err := inc.Fold(d[0].([]timeutil.Millis), d[1].([]float64), d[2].([]uint64)); err != nil {
				t.Fatal(err)
			}
		}
		point, err := inc.EstimatePlain()
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultCIOptions()
		opts.Resamples = reps
		opts.KeepSamples = true
		ci, err := inc.Sketch.SketchBounds(inc, point, opts)
		if err != nil {
			t.Fatal(err)
		}
		return inc, ci
	}

	incMaintained, maintained := build(true)
	if incMaintained.fullSweep {
		t.Fatal("sketch test data unexpectedly degraded to full sweep")
	}
	_, rebuilt := build(false)
	if !boundsEqual(maintained.Lower, rebuilt.Lower) || !boundsEqual(maintained.Upper, rebuilt.Upper) {
		t.Fatal("delta-maintained sketch bounds differ from rebuilt sketch bounds")
	}

	// On this dataset — iid latencies, so every wiggle in the point curve
	// is sampling accident — the block bootstrap's re-timing flattens the
	// accidental structure while the Poisson sketch preserves it: the two
	// replicate distributions genuinely differ, and the KS gate must say
	// so (this is the case where a live engine keeps serving exact bounds).
	opts := DefaultCIOptions()
	opts.Resamples = reps
	opts.KeepSamples = true
	times, lats := incMaintained.Columns()
	exact, err := e.EstimateCIColumns(times, lats, opts)
	if err != nil {
		t.Fatal(err)
	}
	mean, maxStat, bins, err := KSBinsStat(exact, maintained)
	if err != nil {
		t.Fatal(err)
	}
	crit := KSCritical(reps, reps, 0.01)
	t.Logf("KS gate (accidental structure): mean=%.3f max=%.3f over %d bins (critical %.3f)", mean, maxStat, bins, crit)
	if mean <= crit {
		t.Fatalf("KS gate failed to reject divergent bootstrap distributions: mean %.3f <= critical %.3f", mean, crit)
	}
}

// TestSketchKSGateOnPlantedData runs the equivalence gate on data with a
// real planted latency preference (the paper's regime): structure that
// survives block re-timing centers both bootstraps on the same curve, so
// the sketch must pass.
func TestSketchKSGateOnPlantedData(t *testing.T) {
	e := testEstimator(t, nil)
	const reps = 40
	src := rng.New(10)
	fastLat, slowLat := 250.0, 900.0
	regime := func(tm timeutil.Millis) bool { return (tm/(2*timeutil.MillisPerHour))%2 == 1 }
	records := genRecords(src, 4*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return slowLat
			}
			return fastLat
		},
		0.25,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return 0.5
			}
			return 1.0
		})
	records = usable(records)
	telemetry.SortByTime(records)
	times, lats := columnsOf(records)
	seqs := make([]uint64, len(times))
	for i := range seqs {
		seqs[i] = uint64(i + 1)
	}

	inc := e.NewIncremental()
	inc.Sketch = e.NewBootSketch(reps, 7)
	if err := inc.Fold(times, lats, seqs); err != nil {
		t.Fatal(err)
	}
	point, err := inc.EstimatePlain()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultCIOptions()
	opts.Resamples = reps
	opts.KeepSamples = true
	sk, err := inc.Sketch.SketchBounds(inc, point, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.EstimateCIColumns(times, lats, opts)
	if err != nil {
		t.Fatal(err)
	}
	mean, maxStat, bins, err := KSBinsStat(exact, sk)
	if err != nil {
		t.Fatal(err)
	}
	crit := KSCritical(reps, reps, 0.01)
	t.Logf("KS gate (planted): mean=%.3f max=%.3f over %d bins (critical %.3f)", mean, maxStat, bins, crit)
	if mean > crit {
		t.Fatalf("sketch failed KS equivalence gate on planted data: mean %.3f > critical %.3f", mean, crit)
	}
}

// BenchmarkIncrementalDirty is the dirty-epoch cost this PR exists for:
// fold one in-window record, re-estimate. The batch equivalent rescans and
// resweeps everything.
func BenchmarkIncrementalDirty(b *testing.B) {
	e, err := NewEstimator(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(3)
	horizon := 2 * timeutil.MillisPerDay
	const n = 50000
	ts := make([]timeutil.Millis, n)
	ls := make([]float64, n)
	qs := make([]uint64, n)
	ts[0], ts[1] = 0, horizon-1
	for i := 2; i < n; i++ {
		ts[i] = timeutil.Millis(src.Uint64n(uint64(horizon)))
	}
	for i := range ls {
		ls[i] = 50 + 2500*src.Float64()
		qs[i] = uint64(i + 1)
	}
	sort.Sort(&colSorter{ts, ls, qs})
	inc := e.NewIncremental()
	if err := inc.Fold(ts, ls, qs); err != nil {
		b.Fatal(err)
	}
	if _, err := inc.EstimatePlain(); err != nil {
		b.Fatal(err)
	}
	seq := uint64(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		dts := []timeutil.Millis{1 + timeutil.Millis(src.Uint64n(uint64(horizon-2)))}
		dls := []float64{50 + 2500*src.Float64()}
		dqs := []uint64{seq}
		if err := inc.Fold(dts, dls, dqs); err != nil {
			b.Fatal(err)
		}
		if _, err := inc.EstimatePlain(); err != nil {
			b.Fatal(err)
		}
	}
	if inc.fullSweep {
		b.Fatal("benchmark unexpectedly degraded to full sweeps")
	}
}
