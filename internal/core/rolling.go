package core

import (
	"errors"
	"math"
	"sort"

	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// RollingOptions configures a sliding-window NLP series — the
// generalization of the paper's month-over-month stability check (Figure 9)
// to arbitrary windows, useful for detecting drift in latency sensitivity
// over time.
type RollingOptions struct {
	// Window is the length of each estimation window.
	Window timeutil.Millis
	// Step is the offset between consecutive window starts; Step < Window
	// yields overlapping windows.
	Step timeutil.Millis
	// Probes are the latencies whose NLP is tracked per window.
	Probes []float64
	// TimeNormalized selects the full α-normalized estimator per window.
	// It requires each window to span enough slots; plain estimation
	// (false) works down to much shorter windows.
	TimeNormalized bool
	// MinRecords skips windows with fewer usable records.
	MinRecords int
}

// DefaultRollingOptions tracks weekly windows sliding by half a week.
func DefaultRollingOptions() RollingOptions {
	return RollingOptions{
		Window:         7 * timeutil.MillisPerDay,
		Step:           3*timeutil.MillisPerDay + 12*timeutil.MillisPerHour,
		Probes:         []float64{500, 1000},
		TimeNormalized: true,
		MinRecords:     1000,
	}
}

// Validate checks the options.
func (o RollingOptions) Validate() error {
	if o.Window <= 0 {
		return errors.New("core: non-positive rolling window")
	}
	if o.Step <= 0 {
		return errors.New("core: non-positive rolling step")
	}
	if len(o.Probes) == 0 {
		return errors.New("core: no probe latencies")
	}
	if o.MinRecords < 0 {
		return errors.New("core: negative MinRecords")
	}
	return nil
}

// RollingSeries is the NLP drift series: one row per window that produced
// an estimate.
type RollingSeries struct {
	// WindowStart is the start time of each estimated window.
	WindowStart []timeutil.Millis
	// Probes echoes the probe latencies.
	Probes []float64
	// NLP[i][j] is the NLP at Probes[j] for window i (NaN when that
	// probe's bin was invalid).
	NLP [][]float64
	// ProbeN[i][j] is the effective sample size behind NLP[i][j] — see
	// Curve.EffectiveN. Consumers sizing confidence intervals should use
	// this, not Records: the probe bin's count is what bounds the error.
	ProbeN [][]float64
	// Records[i] is the number of usable records in window i.
	Records []int
	// Skipped counts windows dropped for thin data or estimation
	// failure.
	Skipped int
}

// MaxDrift returns the largest |NLP difference| between consecutive
// windows at probe index j, skipping NaN gaps.
func (r *RollingSeries) MaxDrift(j int) float64 {
	var worst float64
	prev := math.NaN()
	for i := range r.NLP {
		v := r.NLP[i][j]
		if math.IsNaN(v) {
			continue
		}
		if !math.IsNaN(prev) {
			if d := math.Abs(v - prev); d > worst {
				worst = d
			}
		}
		prev = v
	}
	return worst
}

// Rolling estimates NLP over sliding windows of the record stream.
func (e *Estimator) Rolling(records []telemetry.Record, opts RollingOptions) (*RollingSeries, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	telemetry.SortByTime(records)
	times, lats := columnsOf(records)
	return e.rollingColumns(times, lats, opts)
}

// RollingColumns estimates NLP over sliding windows of time-sorted columns
// of usable records — the incremental-friendly form of Rolling used by the
// live watcher, bit-identical to Rolling over records with the same times
// and latencies. A shared Scratch is reused across windows, so a series
// over w windows allocates w output curves, not w estimator states.
func (e *Estimator) RollingColumns(times []timeutil.Millis, lats []float64, opts RollingOptions) (*RollingSeries, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := checkColumns(times, lats); err != nil {
		return nil, err
	}
	return e.rollingColumns(times, lats, opts)
}

// rollingColumns is the shared sliding-window core over sorted columns.
func (e *Estimator) rollingColumns(times []timeutil.Millis, lats []float64, opts RollingOptions) (*RollingSeries, error) {
	lo := times[0]
	hi := times[len(times)-1]

	var sc Scratch
	estimate := func(t []timeutil.Millis, l []float64) (*Curve, error) {
		if opts.TimeNormalized {
			return e.EstimateTimeNormalizedColumns(t, l)
		}
		return e.EstimateColumns(t, l, &sc)
	}
	out := &RollingSeries{Probes: opts.Probes}
	for start := lo; start+opts.Window <= hi+1; start += opts.Step {
		end := start + opts.Window
		i := sort.Search(len(times), func(k int) bool { return times[k] >= start })
		j := sort.Search(len(times), func(k int) bool { return times[k] >= end })
		if j-i < opts.MinRecords {
			out.Skipped++
			continue
		}
		curve, err := estimate(times[i:j], lats[i:j])
		if err != nil {
			out.Skipped++
			continue
		}
		row := make([]float64, len(opts.Probes))
		ns := make([]float64, len(opts.Probes))
		for p, probe := range opts.Probes {
			v, ok := curve.At(probe)
			if !ok {
				v = math.NaN()
			}
			row[p] = v
			ns[p] = curve.EffectiveN(probe)
		}
		out.WindowStart = append(out.WindowStart, start)
		out.NLP = append(out.NLP, row)
		out.ProbeN = append(out.ProbeN, ns)
		out.Records = append(out.Records, j-i)
	}
	if len(out.WindowStart) == 0 {
		return nil, errors.New("core: no window produced an estimate")
	}
	return out, nil
}
