package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// curveJSON is the wire form of a Curve. IEEE NaN (used for undefined raw
// ratios) is not representable in JSON, so float columns travel as
// *float64 with null holes.
type curveJSON struct {
	BinCenters  []float64  `json:"bin_centers"`
	Biased      []float64  `json:"biased"`
	Unbiased    []float64  `json:"unbiased"`
	Raw         []*float64 `json:"raw"`
	Smoothed    []float64  `json:"smoothed"`
	NLP         []float64  `json:"nlp"`
	Valid       []bool     `json:"valid"`
	ReferenceMS float64    `json:"reference_ms"`
	BiasedN     int        `json:"biased_n"`
	UnbiasedN   int        `json:"unbiased_n"`
}

func toNullable(xs []float64) []*float64 {
	out := make([]*float64, len(xs))
	for i := range xs {
		if !math.IsNaN(xs[i]) && !math.IsInf(xs[i], 0) {
			v := xs[i]
			out[i] = &v
		}
	}
	return out
}

func fromNullable(xs []*float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		if xs[i] == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *xs[i]
		}
	}
	return out
}

// MarshalJSON implements json.Marshaler with null in place of NaN.
func (c *Curve) MarshalJSON() ([]byte, error) {
	return json.Marshal(curveJSON{
		BinCenters:  c.BinCenters,
		Biased:      c.Biased,
		Unbiased:    c.Unbiased,
		Raw:         toNullable(c.Raw),
		Smoothed:    c.Smoothed,
		NLP:         c.NLP,
		Valid:       c.Valid,
		ReferenceMS: c.ReferenceMS,
		BiasedN:     c.BiasedN,
		UnbiasedN:   c.UnbiasedN,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Curve) UnmarshalJSON(data []byte) error {
	var w curveJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	n := len(w.BinCenters)
	for name, l := range map[string]int{
		"biased": len(w.Biased), "unbiased": len(w.Unbiased), "raw": len(w.Raw),
		"smoothed": len(w.Smoothed), "nlp": len(w.NLP), "valid": len(w.Valid),
	} {
		if l != n {
			return fmt.Errorf("core: column %s has %d entries, want %d", name, l, n)
		}
	}
	c.BinCenters = w.BinCenters
	c.Biased = w.Biased
	c.Unbiased = w.Unbiased
	c.Raw = fromNullable(w.Raw)
	c.Smoothed = w.Smoothed
	c.NLP = w.NLP
	c.Valid = w.Valid
	c.ReferenceMS = w.ReferenceMS
	c.BiasedN = w.BiasedN
	c.UnbiasedN = w.UnbiasedN
	return nil
}

// ciBoundsJSON is the wire form of a CurveCI's bootstrap bounds (the point
// estimate travels separately as a Curve). Unsupported bins are NaN and
// travel as null.
type ciBoundsJSON struct {
	Lower      []*float64 `json:"lower"`
	Upper      []*float64 `json:"upper"`
	Replicates int        `json:"replicates"`
}

// MarshalBoundsJSON encodes just the confidence bounds (lower, upper,
// replicates) with null in place of NaN. The embedded point estimate is
// intentionally excluded so callers can place curve and bounds as separate
// JSON fields.
func (c *CurveCI) MarshalBoundsJSON() ([]byte, error) {
	return json.Marshal(ciBoundsJSON{
		Lower:      toNullable(c.Lower),
		Upper:      toNullable(c.Upper),
		Replicates: c.Replicates,
	})
}

// WriteJSON streams the curve as indented JSON.
func (c *Curve) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadCurveJSON decodes a curve written by WriteJSON.
func ReadCurveJSON(r io.Reader) (*Curve, error) {
	var c Curve
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	if len(c.BinCenters) == 0 {
		return nil, errors.New("core: empty curve")
	}
	return &c, nil
}
