package core

import (
	"bytes"
	"fmt"
	"slices"
	"sort"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

// genSeqColumns synthesizes n usable records in ack order: times are random
// within [0, horizon) (so ack order is NOT time order), seqs strictly
// ascend, and ~tieRate of the records reuse the previous record's timestamp
// to exercise (time, seq) tie-breaking.
func genSeqColumns(seed uint64, n int, horizon timeutil.Millis, tieRate float64) ([]timeutil.Millis, []float64, []uint64) {
	src := rng.New(seed)
	times := make([]timeutil.Millis, n)
	lats := make([]float64, n)
	seqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		if i > 0 && src.Bool(tieRate) {
			times[i] = times[i-1]
		} else {
			times[i] = timeutil.Millis(src.Uint64n(uint64(horizon)))
		}
		lats[i] = 50 + 2500*src.Float64()
		seqs[i] = uint64(i + 1)
	}
	return times, lats, seqs
}

// sortedSummary builds a fresh (time, seq)-sorted summary from ack-order
// columns the straightforward way: stable sort of index triples.
func sortedSummary(times []timeutil.Millis, lats []float64, seqs []uint64) *Summary {
	idx := make([]int, len(times))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return summaryLess(times[idx[a]], seqs[idx[a]], times[idx[b]], seqs[idx[b]])
	})
	s := &Summary{}
	for _, i := range idx {
		s.Times = append(s.Times, times[i])
		s.Lats = append(s.Lats, lats[i])
		s.Seqs = append(s.Seqs, seqs[i])
	}
	return s
}

// foldChunks folds ack-order columns into dst in chunks of the given sizes
// (each chunk sorted by (time, seq) first, as the live engine does per
// delta).
func foldChunks(t *testing.T, dst *Summary, times []timeutil.Millis, lats []float64, seqs []uint64, chunks []int) {
	t.Helper()
	at := 0
	for _, sz := range chunks {
		end := at + sz
		if end > len(times) {
			end = len(times)
		}
		if end == at {
			continue
		}
		d := sortedSummary(times[at:end], lats[at:end], seqs[at:end])
		if err := dst.FoldSummary(d); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if at < len(times) {
		d := sortedSummary(times[at:], lats[at:], seqs[at:])
		if err := dst.FoldSummary(d); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: any chunking of the ack stream folded incrementally equals the
// from-scratch (time, seq) sort, columns and histogram alike.
func TestSummaryFoldEquivalentToRebuild(t *testing.T) {
	e := testEstimator(t, nil)
	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(400)
		times, lats, seqs := genSeqColumns(uint64(1000+trial), n, 6*timeutil.MillisPerHour, 0.3)
		var chunks []int
		left := n
		for left > 0 {
			c := 1 + src.Intn(97)
			chunks = append(chunks, c)
			left -= c
		}

		want := sortedSummary(times, lats, seqs)
		got := &Summary{B: e.newHist()}
		foldChunks(t, got, times, lats, seqs, chunks)

		if !slices.Equal(want.Times, got.Times) || !slices.Equal(want.Lats, got.Lats) || !slices.Equal(want.Seqs, got.Seqs) {
			t.Fatalf("trial %d: folded summary differs from rebuild (n=%d chunks=%v)", trial, n, chunks)
		}
		wantB := e.newHist()
		for _, v := range lats {
			wantB.Add(v)
		}
		if !slices.Equal(wantB.Counts(), got.B.Counts()) || wantB.Total() != got.B.Total() {
			t.Fatalf("trial %d: folded histogram differs from rebuild", trial)
		}
	}
}

// Property: MergeSummaries over disjoint sorted partials equals the global
// sort.
func TestMergeSummaries(t *testing.T) {
	e := testEstimator(t, nil)
	times, lats, seqs := genSeqColumns(7, 500, timeutil.MillisPerDay, 0.25)
	want := sortedSummary(times, lats, seqs)

	// Partition records round-robin into 4 partials, each sorted.
	parts := make([]*Summary, 4)
	for i := range parts {
		var pt []timeutil.Millis
		var pl []float64
		var ps []uint64
		for j := i; j < len(times); j += len(parts) {
			pt = append(pt, times[j])
			pl = append(pl, lats[j])
			ps = append(ps, seqs[j])
		}
		parts[i] = sortedSummary(pt, pl, ps)
	}
	parts[1].B = e.newHist()
	for _, v := range parts[1].Lats {
		parts[1].B.Add(v)
	}

	dst := &Summary{B: e.newHist()}
	if err := MergeSummaries(dst, parts...); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want.Times, dst.Times) || !slices.Equal(want.Lats, dst.Lats) || !slices.Equal(want.Seqs, dst.Seqs) {
		t.Fatal("merged summary differs from global sort")
	}
	wantB := e.newHist()
	for _, v := range lats {
		wantB.Add(v)
	}
	if !slices.Equal(wantB.Counts(), dst.B.Counts()) {
		t.Fatal("merged histogram differs from rebuild")
	}

	// Merging again into the same dst must reset, not accumulate.
	if err := MergeSummaries(dst, parts...); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != want.Len() || dst.B.Total() != wantB.Total() {
		t.Fatal("repeated MergeSummaries accumulated state")
	}
}

// The load-bearing byte-identity property: a summary grown fold by fold,
// re-estimated after every fold with a retained plan + scratch + maintained
// histogram, must match EstimateColumns from scratch at every step.
func TestEstimateSummaryIncrementalMatchesBatch(t *testing.T) {
	e := testEstimator(t, nil)
	times, lats, seqs := genSeqColumns(11, 1200, 2*timeutil.MillisPerDay, 0.2)

	s := &Summary{B: e.newHist()}
	plan := &UnbiasedPlan{}
	sc := &Scratch{}
	at := 0
	src := rng.New(5)
	step := 0
	for at < len(times) {
		end := at + 1 + src.Intn(199)
		if end > len(times) {
			end = len(times)
		}
		d := sortedSummary(times[at:end], lats[at:end], seqs[at:end])
		if err := s.FoldSummary(d); err != nil {
			t.Fatal(err)
		}
		at = end
		step++

		got, err := e.EstimateSummary(s, plan, sc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.EstimateColumns(s.Times, s.Lats, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
			t.Fatalf("step %d (n=%d): incremental estimate differs from batch", step, s.Len())
		}
	}
	if plan.reused == 0 {
		t.Fatal("final step never reused retained keys — extension path untested")
	}

	// A nil plan must also work (plain delegation).
	got, err := e.EstimateSummary(s, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.EstimateColumns(s.Times, s.Lats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
		t.Fatal("nil-plan EstimateSummary differs from batch")
	}
}

// Plan invalidation: a span change (out-of-window record) or a seed change
// must regenerate and still match batch.
func TestUnbiasedPlanInvalidation(t *testing.T) {
	e := testEstimator(t, nil)
	times, lats, seqs := genSeqColumns(13, 300, 12*timeutil.MillisPerHour, 0.1)
	s := &Summary{B: e.newHist()}
	if err := s.FoldSummary(sortedSummary(times, lats, seqs)); err != nil {
		t.Fatal(err)
	}
	plan := &UnbiasedPlan{}
	sc := &Scratch{}
	if _, err := e.EstimateSummary(s, plan, sc); err != nil {
		t.Fatal(err)
	}
	if plan.reused != 0 {
		t.Fatal("first estimation cannot reuse keys")
	}

	// Extend the window: span changes, full regeneration.
	d := sortedSummary(
		[]timeutil.Millis{14 * timeutil.MillisPerHour}, []float64{123}, []uint64{9999})
	if err := s.FoldSummary(d); err != nil {
		t.Fatal(err)
	}
	got, err := e.EstimateSummary(s, plan, sc)
	if err != nil {
		t.Fatal(err)
	}
	if plan.reused != 0 {
		t.Fatal("span change must invalidate the retained keys")
	}
	want, err := e.EstimateColumns(s.Times, s.Lats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
		t.Fatal("post-invalidation estimate differs from batch")
	}
}

func TestRadixSortUint64(t *testing.T) {
	src := rng.New(3)
	for _, n := range []int{0, 1, 2, 127, 128, 1000, 5000} {
		for _, span := range []uint64{1, 255, 1 << 16, 1 << 40, 0} {
			a := make([]uint64, n)
			for i := range a {
				if span == 0 {
					a[i] = src.Uint64()
				} else {
					a[i] = src.Uint64n(span)
				}
			}
			want := slices.Clone(a)
			slices.Sort(want)
			radixSortUint64(a, make([]uint64, n))
			if !slices.Equal(want, a) {
				t.Fatalf("radix sort differs (n=%d span=%d)", n, span)
			}
		}
	}
}

func TestSummaryFoldErrors(t *testing.T) {
	s := &Summary{}
	if err := s.Fold([]timeutil.Millis{1}, nil, nil); err != errSummaryColumns {
		t.Fatalf("ragged delta: %v", err)
	}
	if _, err := testEstimator(t, nil).EstimateSummary(&Summary{}, nil, nil); err == nil {
		t.Fatal("empty summary must error")
	}
}

// Fold steady state: out-of-order folds into a warm summary must not
// allocate (spare-buffer swap), and appends must amortize.
func TestSummaryFoldAllocs(t *testing.T) {
	times, lats, seqs := genSeqColumns(17, 4096, timeutil.MillisPerDay, 0.2)
	s := &Summary{}
	if err := s.FoldSummary(sortedSummary(times, lats, seqs)); err != nil {
		t.Fatal(err)
	}
	// Warm the spare buffers with one out-of-order fold.
	delta := &Summary{Times: []timeutil.Millis{0}, Lats: []float64{1}, Seqs: []uint64{1 << 40}}
	if err := s.FoldSummary(delta); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		delta.Seqs[0]++
		if err := s.FoldSummary(delta); err != nil {
			t.Fatal(err)
		}
	})
	// Columns grow by one per fold, so only capacity doublings may allocate.
	if avg > 1 {
		t.Fatalf("out-of-order fold allocates %.1f/op, want ≤1", avg)
	}
}

func BenchmarkSummaryFoldAppend(b *testing.B) {
	times, lats, seqs := genSeqColumns(19, 100000, 2*timeutil.MillisPerDay, 0.1)
	base := sortedSummary(times, lats, seqs)
	s := &Summary{}
	if err := s.FoldSummary(base); err != nil {
		b.Fatal(err)
	}
	lastT := s.Times[s.Len()-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Summary{
			Times: []timeutil.Millis{lastT},
			Lats:  []float64{100},
			Seqs:  []uint64{uint64(200000 + i)},
		}
		if err := s.FoldSummary(&d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateSummaryIncremental(b *testing.B) {
	e, err := NewEstimator(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	times, lats, seqs := genSeqColumns(23, 50000, 2*timeutil.MillisPerDay, 0.1)
	s := &Summary{B: e.newHist()}
	if err := s.FoldSummary(sortedSummary(times, lats, seqs)); err != nil {
		b.Fatal(err)
	}
	plan := &UnbiasedPlan{}
	sc := &Scratch{}
	if _, err := e.EstimateSummary(s, plan, sc); err != nil {
		b.Fatal(err)
	}
	src := rng.New(29)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Summary{
			Times: []timeutil.Millis{timeutil.Millis(src.Uint64n(uint64(s.Times[s.Len()-1])))},
			Lats:  []float64{100 + float64(i%500)},
			Seqs:  []uint64{uint64(1000000 + i)},
		}
		if err := s.FoldSummary(&d); err != nil {
			b.Fatal(err)
		}
		if _, err := e.EstimateSummary(s, plan, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleSummary() {
	s := &Summary{}
	_ = s.Fold([]timeutil.Millis{10, 20}, []float64{100, 200}, []uint64{1, 2})
	_ = s.Fold([]timeutil.Millis{15}, []float64{150}, []uint64{3})
	fmt.Println(s.Times)
	// Output: [10 15 20]
}
