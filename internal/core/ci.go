package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/obs"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// CIOptions configures bootstrap confidence intervals for an NLP curve.
type CIOptions struct {
	// Resamples is the number of bootstrap replicates.
	Resamples int
	// BlockLen is the moving-block length. Blocks must be long relative
	// to the latency process's correlation time (hours, not minutes) or
	// the resampled series loses the locality the method depends on.
	BlockLen timeutil.Millis
	// Confidence is the two-sided coverage level, e.g. 0.9.
	Confidence float64
	// TimeNormalized selects the full (α-normalized) estimator for each
	// replicate.
	TimeNormalized bool
	// MinSupport is the fraction of replicates in which a bin must be
	// valid for bounds to be reported there (default 0.5 when zero).
	MinSupport float64
	// Seed drives block resampling.
	Seed uint64
	// Workers bounds how many bootstrap replicates run concurrently.
	// 0 means GOMAXPROCS; 1 recovers the serial path. The output is
	// bit-identical at any worker count: each replicate's randomness is
	// derived up front with Source.Split(rep), and replicate results are
	// aggregated in replicate order after all workers finish.
	Workers int
	// KeepSamples retains the per-bin replicate NLP samples on the result
	// (CurveCI.BinSamples) for distribution-level comparisons such as the
	// sketch-vs-exact KS gate.
	KeepSamples bool
}

// DefaultCIOptions returns a moderate-cost configuration: 40 replicates of
// 6-hour blocks at 90 % confidence, parallel across GOMAXPROCS workers.
func DefaultCIOptions() CIOptions {
	return CIOptions{
		Resamples:  40,
		BlockLen:   6 * timeutil.MillisPerHour,
		Confidence: 0.9,
		Seed:       1,
	}
}

// Validate checks the options.
func (o CIOptions) Validate() error {
	if o.Resamples < 2 {
		return errors.New("core: need at least 2 bootstrap resamples")
	}
	if o.BlockLen <= 0 {
		return errors.New("core: non-positive block length")
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return errors.New("core: confidence out of (0,1)")
	}
	if o.MinSupport < 0 || o.MinSupport > 1 {
		return errors.New("core: MinSupport out of [0,1]")
	}
	if o.Workers < 0 {
		return errors.New("core: negative Workers")
	}
	return nil
}

// CurveCI is an NLP point estimate with per-bin bootstrap bounds.
type CurveCI struct {
	// Curve is the point estimate on the full data.
	*Curve
	// Lower and Upper are the per-bin confidence bounds; NaN where too
	// few replicates supported the bin.
	Lower, Upper []float64
	// Replicates is the number of bootstrap curves actually estimated
	// (replicates whose estimation failed are skipped and counted out).
	Replicates int
	// BinSamples, populated only under CIOptions.KeepSamples, holds each
	// bin's replicate NLP values (sorted where bounds were reported).
	BinSamples [][]float64
}

// Bounds returns the interval at the bin containing ms and whether it is
// supported.
func (c *CurveCI) Bounds(ms float64) (lo, hi float64, ok bool) {
	if len(c.BinCenters) == 0 {
		return 0, 0, false
	}
	i := 0
	if len(c.BinCenters) > 1 {
		w := c.BinCenters[1] - c.BinCenters[0]
		i = int((ms - (c.BinCenters[0] - w/2)) / w)
		if i < 0 {
			i = 0
		}
		if i >= len(c.Lower) {
			i = len(c.Lower) - 1
		}
	}
	lo, hi = c.Lower[i], c.Upper[i]
	return lo, hi, !math.IsNaN(lo) && !math.IsNaN(hi)
}

// bootBlocks is the block partition of the observation window, computed
// once and shared read-only by every bootstrap replicate.
type bootBlocks struct {
	blockLen timeutil.Millis
	windowLo timeutil.Millis
	times    []timeutil.Millis // usable, ascending sample instants
	lats     []float64         // latencies aligned with times
	ranges   [][2]int          // half-open [i, j) record range per block
	// hists[b] is block b's biased latency histogram (plain path). A
	// replicate's biased histogram is the sum of its picked blocks'
	// histograms — time shifts never change latencies — which turns n
	// per-record adds into numBlocks·bins float adds.
	hists []*histogram.Histogram
	// sweepKeys are the sorted unbiased draw offsets from windowLo over
	// the full block-partition span, with auxSeed the tie-break seed
	// (plain path). Every replicate would generate the identical key set
	// (the draws depend only on the estimator seed), so it is generated
	// and sorted once and shared read-only.
	sweepKeys []uint64
	auxSeed   uint64
}

// buildBootBlocks partitions time-sorted columns into BlockLen blocks.
// The columns are time-sorted, so each block is a contiguous index range —
// no per-block copies. The plain (non-α) path additionally gets per-block
// biased histograms and the shared sweep-key plan.
func (e *Estimator) buildBootBlocks(times []timeutil.Millis, lats []float64, blockLen timeutil.Millis, plain bool) (*bootBlocks, error) {
	windowLo := times[0]
	numBlocks := int((times[len(times)-1]-windowLo)/blockLen) + 1
	if numBlocks < 2 {
		return nil, fmt.Errorf("core: window shorter than two %v-ms blocks", blockLen)
	}
	bb := &bootBlocks{
		blockLen: blockLen,
		windowLo: windowLo,
		times:    times,
		lats:     lats,
		ranges:   make([][2]int, numBlocks),
	}
	idx := 0
	for b := 0; b < numBlocks; b++ {
		start := idx
		for idx < len(times) && int((times[idx]-windowLo)/blockLen) == b {
			idx++
		}
		bb.ranges[b] = [2]int{start, idx}
	}
	if plain {
		bb.hists = make([]*histogram.Histogram, numBlocks)
		for b, r := range bb.ranges {
			h := e.newHist()
			for _, v := range bb.lats[r[0]:r[1]] {
				h.Add(v)
			}
			bb.hists[b] = h
		}
		// Draw instants are uniform over the block-partition span (every
		// replicate's resampled series occupies exactly this window).
		draws := int(math.Ceil(float64(len(times)) * e.opts.UnbiasedPerSample))
		span := uint64(timeutil.Millis(numBlocks) * blockLen)
		src := rng.New(e.opts.Seed)
		bb.sweepKeys = make([]uint64, draws)
		for i := range bb.sweepKeys {
			bb.sweepKeys[i] = src.Uint64n(span)
		}
		bb.auxSeed = src.Uint64()
		slices.Sort(bb.sweepKeys)
	}
	return bb, nil
}

// ciScratch is one worker's reusable replicate state: resampled series
// buffers, histograms, and the sweep sampler's key buffer all survive
// across the replicates the worker processes.
type ciScratch struct {
	times []timeutil.Millis
	lats  []float64
	b, u  *histogram.Histogram
	sweep sweepScratch
}

// runPlainReplicate estimates one bootstrap replicate with the pooled
// (no-α) estimator, never materializing the resampled records: the biased
// histogram is summed from the picked blocks' precomputed histograms and
// the unbiased sweep runs over reused flat time/latency buffers. The
// resampled series is sorted by construction (ascending blocks of
// ascending, uniformly shifted times), so no re-sort is needed.
func (e *Estimator) runPlainReplicate(bb *bootBlocks, src *rng.Source, sc *ciScratch) (*Curve, error) {
	numBlocks := len(bb.ranges)
	sc.times = sc.times[:0]
	sc.lats = sc.lats[:0]
	sc.b.Reset()
	for pos := 0; pos < numBlocks; pos++ {
		pick := src.Intn(numBlocks)
		shift := timeutil.Millis(pos-pick) * bb.blockLen
		r := bb.ranges[pick]
		for _, t := range bb.times[r[0]:r[1]] {
			sc.times = append(sc.times, t+shift)
		}
		sc.lats = append(sc.lats, bb.lats[r[0]:r[1]]...)
		if err := sc.b.AddHistogram(bb.hists[pick]); err != nil {
			return nil, err
		}
	}
	n := len(sc.times)
	if n == 0 {
		return nil, errEmptyRecords
	}
	sc.u.Reset()
	// Replicates share one precomputed sorted key set: the draw instants
	// depend only on the estimator seed, so replicate variation comes
	// from the block composition — not from re-rolling the Monte Carlo
	// draws — and the per-replicate keygen + sort disappears entirely.
	sweepSortedKeys(sc.times, sc.lats, bb.windowLo, bb.sweepKeys, bb.auxSeed, sc.u)
	return e.finishCurve(nil, sc.b, sc.u, n, len(bb.sweepKeys))
}

// runNormalizedReplicate estimates one bootstrap replicate with the full
// time-normalized estimator over reused resampled-column buffers.
func (e *Estimator) runNormalizedReplicate(bb *bootBlocks, src *rng.Source, sc *ciScratch) (*Curve, error) {
	numBlocks := len(bb.ranges)
	sc.times = sc.times[:0]
	sc.lats = sc.lats[:0]
	for pos := 0; pos < numBlocks; pos++ {
		pick := src.Intn(numBlocks)
		shift := timeutil.Millis(pos-pick) * bb.blockLen
		r := bb.ranges[pick]
		for _, t := range bb.times[r[0]:r[1]] {
			sc.times = append(sc.times, t+shift)
		}
		sc.lats = append(sc.lats, bb.lats[r[0]:r[1]]...)
	}
	if len(sc.times) == 0 {
		return nil, errEmptyRecords
	}
	// Sorted by construction; the slot partition consumes the columns
	// before this replicate's buffers are reused.
	return e.estimateTimeNormalizedColumns(nil, sc.times, sc.lats)
}

// EstimateCI computes the NLP curve together with moving-block bootstrap
// confidence bounds: the observation window is cut into BlockLen blocks,
// blocks are resampled with replacement (records re-timed to their
// resampled position so slotting and unbiased sampling see a coherent
// pseudo-window), and the estimator is rerun per replicate.
//
// Replicates run on a pool of opts.Workers goroutines. Each replicate
// draws its block picks from an independent stream split off the bootstrap
// seed, so the result is bit-identical whatever the worker count.
func (e *Estimator) EstimateCI(records []telemetry.Record, opts CIOptions) (*CurveCI, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	telemetry.SortByTime(records)
	times, lats := columnsOf(records)
	return e.estimateCI(times, lats, opts)
}

// EstimateCIColumns is EstimateCI directly over time-sorted columns of
// usable records, bit-identical to EstimateCI over records with the same
// times and latencies.
func (e *Estimator) EstimateCIColumns(times []timeutil.Millis, lats []float64, opts CIOptions) (*CurveCI, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := checkColumns(times, lats); err != nil {
		return nil, err
	}
	return e.estimateCI(times, lats, opts)
}

// estimateCI is the shared bootstrap core over validated sorted columns.
func (e *Estimator) estimateCI(times []timeutil.Millis, lats []float64, opts CIOptions) (*CurveCI, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate_ci")
	defer sp.End()
	sp.SetAttr("records", len(times))

	// The point estimate's stage spans nest under estimate_ci; the
	// bootstrap replicates run untraced (40 replicates × 6 stages of
	// span noise would drown the report) and are summarized by a single
	// bootstrap span instead.
	traced := *e
	traced.trace = sp
	var point *Curve
	var err error
	if opts.TimeNormalized {
		point, err = traced.EstimateTimeNormalizedColumns(times, lats)
	} else {
		point, err = traced.EstimateColumns(times, lats, nil)
	}
	if err != nil {
		return nil, err
	}

	bb, err := e.buildBootBlocks(times, lats, opts.BlockLen, !opts.TimeNormalized)
	if err != nil {
		return nil, err
	}
	return e.bootstrapCI(sp, point, bb, opts, nil)
}

// bootstrapCI runs the replicate pool over a prepared block partition and
// aggregates per-bin bounds. It is shared verbatim by the batch path
// (estimateCI) and the delta-maintained path (EstimateCIIncremental), which
// is what keeps the two bit-identical: replicate randomness, scheduling and
// aggregation order are all decided here. st, when non-nil, donates retained
// per-worker replicate scratch so repeated estimations stop allocating.
func (e *Estimator) bootstrapCI(sp *obs.Span, point *Curve, bb *bootBlocks, opts CIOptions, st *CIState) (*CurveCI, error) {
	if opts.MinSupport == 0 {
		opts.MinSupport = 0.5
	}
	workers := workerCount(opts.Workers, opts.Resamples)
	bootSp := sp.StartChild("bootstrap")
	bootSp.SetAttr("resamples", opts.Resamples)
	bootSp.SetAttr("blocks", len(bb.ranges))
	bootSp.SetAttr("workers", workers)
	bootStart := time.Now()
	if m := getMetrics(); m != nil {
		m.workers.Set(float64(workers))
	}

	// One independent stream per replicate, derived up front: Split
	// advances the parent source, so derivation happens serially here in
	// replicate order, decoupled from worker scheduling.
	base := rng.New(opts.Seed)
	repSrcs := make([]*rng.Source, opts.Resamples)
	for rep := range repSrcs {
		repSrcs[rep] = base.Split(uint64(rep))
	}

	// Replicates run untraced and with the estimator's inner parallelism
	// off — the replicates themselves are the parallel units here.
	untraced := *e
	untraced.trace = nil
	untraced.opts.Workers = 1

	type repOut struct {
		nlp   []float64
		valid []bool
		ok    bool
	}
	outs := make([]repOut, opts.Resamples)
	// Per-worker scratch comes from the retained pool when a CIState is
	// present; the pool is sized serially here so workers never mutate it.
	var pool []*ciScratch
	if st != nil {
		for len(st.scs) < workers {
			st.scs = append(st.scs, nil)
		}
		pool = st.scs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &ciScratch{}
			if pool != nil {
				if pool[w] == nil {
					pool[w] = sc
				} else {
					sc = pool[w]
				}
			}
			if !opts.TimeNormalized && sc.b == nil {
				sc.b = untraced.newHist()
				sc.u = untraced.newHist()
			}
			for {
				rep := int(next.Add(1)) - 1
				if rep >= opts.Resamples {
					return
				}
				repStart := time.Now()
				var c *Curve
				var repErr error
				if opts.TimeNormalized {
					c, repErr = untraced.runNormalizedReplicate(bb, repSrcs[rep], sc)
				} else {
					c, repErr = untraced.runPlainReplicate(bb, repSrcs[rep], sc)
				}
				if m := getMetrics(); m != nil {
					m.replicateDur.ObserveSince(repStart)
					if repErr != nil {
						m.replicateErr.Inc()
					} else {
						m.replicates.Inc()
					}
				}
				if repErr != nil {
					continue // a degenerate replicate (e.g. empty) is skipped
				}
				outs[rep] = repOut{nlp: c.NLP, valid: c.Valid, ok: true}
			}
		}()
	}
	wg.Wait()

	// Aggregate in replicate order so per-bin sample order (and hence the
	// quantiles below) never depends on worker scheduling.
	bins := len(point.NLP)
	samples := make([][]float64, bins) // per-bin replicate values
	replicates := 0
	for _, o := range outs {
		if !o.ok {
			continue
		}
		replicates++
		for i := 0; i < bins; i++ {
			if o.valid[i] {
				samples[i] = append(samples[i], o.nlp[i])
			}
		}
	}
	bootSp.SetAttr("replicates", replicates)
	bootSp.End()
	if m := getMetrics(); m != nil {
		m.bootstrapDur.ObserveSince(bootStart)
	}
	if replicates < 2 {
		return nil, errors.New("core: too few successful bootstrap replicates")
	}

	out := &CurveCI{
		Curve:      point,
		Lower:      make([]float64, bins),
		Upper:      make([]float64, bins),
		Replicates: replicates,
	}
	alpha := (1 - opts.Confidence) / 2
	need := int(math.Ceil(opts.MinSupport * float64(replicates)))
	for i := 0; i < bins; i++ {
		vs := samples[i]
		if len(vs) < need || len(vs) < 2 {
			out.Lower[i] = math.NaN()
			out.Upper[i] = math.NaN()
			continue
		}
		sort.Float64s(vs)
		out.Lower[i] = quantileSorted(vs, alpha)
		out.Upper[i] = quantileSorted(vs, 1-alpha)
	}
	if opts.KeepSamples {
		out.BinSamples = samples
	}
	return out, nil
}

// quantileSorted interpolates the q-quantile of a sorted slice (mirrors
// stats.Quantile without the copy).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
