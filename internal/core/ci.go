package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// CIOptions configures bootstrap confidence intervals for an NLP curve.
type CIOptions struct {
	// Resamples is the number of bootstrap replicates.
	Resamples int
	// BlockLen is the moving-block length. Blocks must be long relative
	// to the latency process's correlation time (hours, not minutes) or
	// the resampled series loses the locality the method depends on.
	BlockLen timeutil.Millis
	// Confidence is the two-sided coverage level, e.g. 0.9.
	Confidence float64
	// TimeNormalized selects the full (α-normalized) estimator for each
	// replicate.
	TimeNormalized bool
	// MinSupport is the fraction of replicates in which a bin must be
	// valid for bounds to be reported there (default 0.5 when zero).
	MinSupport float64
	// Seed drives block resampling.
	Seed uint64
}

// DefaultCIOptions returns a moderate-cost configuration: 40 replicates of
// 6-hour blocks at 90 % confidence.
func DefaultCIOptions() CIOptions {
	return CIOptions{
		Resamples:  40,
		BlockLen:   6 * timeutil.MillisPerHour,
		Confidence: 0.9,
		Seed:       1,
	}
}

// Validate checks the options.
func (o CIOptions) Validate() error {
	if o.Resamples < 2 {
		return errors.New("core: need at least 2 bootstrap resamples")
	}
	if o.BlockLen <= 0 {
		return errors.New("core: non-positive block length")
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return errors.New("core: confidence out of (0,1)")
	}
	if o.MinSupport < 0 || o.MinSupport > 1 {
		return errors.New("core: MinSupport out of [0,1]")
	}
	return nil
}

// CurveCI is an NLP point estimate with per-bin bootstrap bounds.
type CurveCI struct {
	// Curve is the point estimate on the full data.
	*Curve
	// Lower and Upper are the per-bin confidence bounds; NaN where too
	// few replicates supported the bin.
	Lower, Upper []float64
	// Replicates is the number of bootstrap curves actually estimated
	// (replicates whose estimation failed are skipped and counted out).
	Replicates int
}

// Bounds returns the interval at the bin containing ms and whether it is
// supported.
func (c *CurveCI) Bounds(ms float64) (lo, hi float64, ok bool) {
	if len(c.BinCenters) == 0 {
		return 0, 0, false
	}
	w := c.BinCenters[1] - c.BinCenters[0]
	i := int((ms - (c.BinCenters[0] - w/2)) / w)
	if i < 0 {
		i = 0
	}
	if i >= len(c.Lower) {
		i = len(c.Lower) - 1
	}
	lo, hi = c.Lower[i], c.Upper[i]
	return lo, hi, !math.IsNaN(lo) && !math.IsNaN(hi)
}

// EstimateCI computes the NLP curve together with moving-block bootstrap
// confidence bounds: the observation window is cut into BlockLen blocks,
// blocks are resampled with replacement (records re-timed to their
// resampled position so slotting and unbiased sampling see a coherent
// pseudo-window), and the estimator is rerun per replicate.
func (e *Estimator) EstimateCI(records []telemetry.Record, opts CIOptions) (*CurveCI, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MinSupport == 0 {
		opts.MinSupport = 0.5
	}
	sp := e.trace.StartChild("estimate_ci")
	defer sp.End()
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	sp.SetAttr("records", len(records))
	telemetry.SortByTime(records)

	// The point estimate's stage spans nest under estimate_ci; the
	// bootstrap replicates run untraced (40 replicates × 6 stages of
	// span noise would drown the report) and are summarized by a single
	// bootstrap span instead.
	traced := *e
	traced.trace = sp
	untraced := *e
	untraced.trace = nil
	estimate := untraced.Estimate
	pointEstimate := traced.Estimate
	if opts.TimeNormalized {
		estimate = untraced.EstimateTimeNormalized
		pointEstimate = traced.EstimateTimeNormalized
	}
	point, err := pointEstimate(records)
	if err != nil {
		return nil, err
	}

	// Partition into blocks by original position.
	windowLo := records[0].Time
	numBlocks := int((records[len(records)-1].Time-windowLo)/opts.BlockLen) + 1
	if numBlocks < 2 {
		return nil, fmt.Errorf("core: window shorter than two %v-ms blocks", opts.BlockLen)
	}
	blocks := make([][]telemetry.Record, numBlocks)
	for _, r := range records {
		b := int((r.Time - windowLo) / opts.BlockLen)
		blocks[b] = append(blocks[b], r)
	}

	bootSp := sp.StartChild("bootstrap")
	bootSp.SetAttr("resamples", opts.Resamples)
	bootSp.SetAttr("blocks", numBlocks)
	src := rng.New(opts.Seed)
	bins := len(point.NLP)
	samples := make([][]float64, bins) // per-bin replicate values
	replicates := 0
	resampled := make([]telemetry.Record, 0, len(records))
	for rep := 0; rep < opts.Resamples; rep++ {
		resampled = resampled[:0]
		for pos := 0; pos < numBlocks; pos++ {
			pick := src.Intn(numBlocks)
			shift := timeutil.Millis(pos-pick) * opts.BlockLen
			for _, r := range blocks[pick] {
				r.Time += shift
				resampled = append(resampled, r)
			}
		}
		c, err := estimate(resampled)
		if err != nil {
			continue // a degenerate replicate (e.g. empty) is skipped
		}
		replicates++
		for i := 0; i < bins; i++ {
			if c.Valid[i] {
				samples[i] = append(samples[i], c.NLP[i])
			}
		}
	}
	bootSp.SetAttr("replicates", replicates)
	bootSp.End()
	if replicates < 2 {
		return nil, errors.New("core: too few successful bootstrap replicates")
	}

	out := &CurveCI{
		Curve:      point,
		Lower:      make([]float64, bins),
		Upper:      make([]float64, bins),
		Replicates: replicates,
	}
	alpha := (1 - opts.Confidence) / 2
	need := int(math.Ceil(opts.MinSupport * float64(replicates)))
	for i := 0; i < bins; i++ {
		vs := samples[i]
		if len(vs) < need || len(vs) < 2 {
			out.Lower[i] = math.NaN()
			out.Upper[i] = math.NaN()
			continue
		}
		sort.Float64s(vs)
		out.Lower[i] = quantileSorted(vs, alpha)
		out.Upper[i] = quantileSorted(vs, 1-alpha)
	}
	return out, nil
}

// quantileSorted interpolates the q-quantile of a sorted slice (mirrors
// stats.Quantile without the copy).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
