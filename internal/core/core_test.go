package core

import (
	"math"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	mutations := []func(*Options){
		func(o *Options) { o.BinWidthMS = 0 },
		func(o *Options) { o.MaxLatencyMS = o.BinWidthMS },
		func(o *Options) { o.ReferenceMS = -1 },
		func(o *Options) { o.ReferenceMS = o.MaxLatencyMS },
		func(o *Options) { o.SGWindow = 100 },
		func(o *Options) { o.SGDegree = -1 },
		func(o *Options) { o.UnbiasedPerSample = 0 },
		func(o *Options) { o.MinUnbiasedCount = -1 },
		func(o *Options) { o.SlotDuration = 0 },
		func(o *Options) { o.ReferenceSlots = 0 },
		func(o *Options) { o.MinSlotActions = 0 },
		func(o *Options) { o.AlphaBinWidthMS = 0 },
		func(o *Options) { o.MinAlphaBinCount = -1 },
		func(o *Options) { o.Workers = -1 },
	}
	for i, mut := range mutations {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestNewEstimatorRejectsBadOptions(t *testing.T) {
	o := DefaultOptions()
	o.SGWindow = 4
	if _, err := NewEstimator(o); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestInterpolateHoles(t *testing.T) {
	nan := math.NaN()
	xs := []float64{nan, 2, nan, nan, 8, nan}
	valid := []bool{false, true, false, false, true, false}
	out := interpolateHoles(xs, valid)
	want := []float64{2, 2, 4, 6, 8, 8}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("interpolated = %v, want %v", out, want)
		}
	}
}

func TestInterpolateHolesAllInvalid(t *testing.T) {
	if out := interpolateHoles([]float64{1, 2}, []bool{false, false}); out != nil {
		t.Fatalf("all-invalid returned %v", out)
	}
}

func TestInterpolateHolesNoHoles(t *testing.T) {
	xs := []float64{1, 2, 3}
	out := interpolateHoles(xs, []bool{true, true, true})
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatal("no-hole case altered values")
		}
	}
}

// mkRec builds a minimal valid record.
func mkRec(tm timeutil.Millis, lat float64) telemetry.Record {
	return telemetry.Record{Time: tm, Action: telemetry.SelectMail, LatencyMS: lat, UserID: 1, UserType: telemetry.Business}
}

func TestUnbiasedSamplerNearest(t *testing.T) {
	rs := []telemetry.Record{mkRec(0, 100), mkRec(100, 200), mkRec(1000, 300)}
	s := newUnbiasedSampler(rs)
	src := rng.New(1)
	cases := []struct {
		t    timeutil.Millis
		want float64
	}{
		{0, 100}, {40, 100}, {60, 200}, {100, 200}, {500, 200}, {600, 300}, {5000, 300},
	}
	for _, c := range cases {
		if got := s.nearest(c.t, src); got != c.want {
			t.Fatalf("nearest(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestUnbiasedSamplerTieAtMidpointSplits(t *testing.T) {
	rs := []telemetry.Record{mkRec(0, 1), mkRec(100, 2)}
	s := newUnbiasedSampler(rs)
	src := rng.New(2)
	var left int
	const n = 10000
	for i := 0; i < n; i++ {
		if s.nearest(50, src) == 1 {
			left++
		}
	}
	frac := float64(left) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("midpoint tie split %v, want ~0.5", frac)
	}
}

func TestUnbiasedSamplerSameTimeRandomPick(t *testing.T) {
	rs := []telemetry.Record{mkRec(10, 1), mkRec(10, 2), mkRec(10, 3)}
	s := newUnbiasedSampler(rs)
	src := rng.New(3)
	counts := map[float64]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.nearest(10, src)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Fatalf("value %v drawn with frequency %v", v, frac)
		}
	}
}

func TestUnbiasedSamplerTimeWeighting(t *testing.T) {
	// 100 dense samples (latency 100) in [0,1000); one isolated sample
	// (latency 900) at t=100000. Uniform draws over [0, 200000) should
	// assign the isolated sample roughly half the mass (its Voronoi cell
	// spans ~[50500, 200000)), whereas its biased share is under 1%.
	var rs []telemetry.Record
	for i := 0; i < 100; i++ {
		rs = append(rs, mkRec(timeutil.Millis(i*10), 100))
	}
	rs = append(rs, mkRec(100000, 900))
	s := newUnbiasedSampler(rs)
	src := rng.New(4)
	var slow int
	const n = 50000
	for i := 0; i < n; i++ {
		if s.draw(0, 200000, src) == 900 {
			slow++
		}
	}
	frac := float64(slow) / n
	want := (200000.0 - 50495.0) / 200000.0
	if math.Abs(frac-want) > 0.02 {
		t.Fatalf("isolated-sample unbiased mass %v, want ~%v", frac, want)
	}
}

// genRecords synthesizes one record stream from a latency-median function
// and an action-rate function, minute by minute.
func genRecords(src *rng.Source, horizon timeutil.Millis, latMedian func(timeutil.Millis) float64, sigma float64, ratePerMin func(timeutil.Millis) float64) []telemetry.Record {
	var out []telemetry.Record
	for m := timeutil.Millis(0); m < horizon; m += timeutil.MillisPerMinute {
		n := src.Poisson(ratePerMin(m))
		for i := 0; i < n; i++ {
			tt := m + timeutil.Millis(src.Intn(int(timeutil.MillisPerMinute)))
			lat := latMedian(tt) * src.LogNormal(0, sigma)
			out = append(out, mkRec(tt, lat))
		}
	}
	telemetry.SortByTime(out)
	return out
}

func testEstimator(t *testing.T, mutate func(*Options)) *Estimator {
	t.Helper()
	o := DefaultOptions()
	o.ReferenceMS = 250
	if mutate != nil {
		mutate(&o)
	}
	e, err := NewEstimator(o)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Planted preference, no time confounder: latency regime alternates every
// two hours (so it is uncorrelated with any diurnal pattern), and users act
// at half the rate in the slow regime. The estimated NLP at the slow
// latency must be ≈ 0.5 relative to the fast latency.
func TestEstimateRecoversPlantedPreference(t *testing.T) {
	src := rng.New(10)
	fastLat, slowLat := 250.0, 900.0
	regime := func(tm timeutil.Millis) bool { // true = slow
		return (tm/(2*timeutil.MillisPerHour))%2 == 1
	}
	records := genRecords(src, 4*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return slowLat
			}
			return fastLat
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return 6
			}
			return 12
		})
	e := testEstimator(t, nil)
	c, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	atSlow, ok := c.At(slowLat)
	if !ok {
		t.Fatal("slow latency bin invalid")
	}
	atFast, ok := c.At(fastLat)
	if !ok {
		t.Fatal("fast latency bin invalid")
	}
	ratio := atSlow / atFast
	if math.Abs(ratio-0.5) > 0.1 {
		t.Fatalf("recovered preference ratio %v, want ~0.5", ratio)
	}
}

// No planted preference, strong time confounder: days are busy AND slow,
// nights quiet AND fast. The naive pooled estimate must report a spurious
// preference for high latency; the time-normalized estimate must be ≈ flat.
func confoundedRecords(seed uint64) []telemetry.Record {
	src := rng.New(seed)
	day := func(tm timeutil.Millis) bool {
		h := timeutil.HourOfDay(tm, 0)
		return h >= 8 && h < 20
	}
	return genRecords(src, 6*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if day(tm) {
				return 550
			}
			return 280
		}, 0.45,
		func(tm timeutil.Millis) float64 {
			if day(tm) {
				return 20
			}
			return 2.5
		})
}

func TestTimeNormalizationRemovesConfounder(t *testing.T) {
	records := confoundedRecords(11)
	e := testEstimator(t, func(o *Options) {
		o.ReferenceMS = 300
	})

	naive, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := e.EstimateTimeNormalized(records)
	if err != nil {
		t.Fatal(err)
	}

	// Probe the NLP at a clearly-daytime latency level.
	probe := 650.0
	nv, ok := naive.At(probe)
	if !ok {
		t.Fatal("naive probe bin invalid")
	}
	tv, ok := norm.At(probe)
	if !ok {
		t.Fatal("normalized probe bin invalid")
	}
	if nv < 1.5 {
		t.Fatalf("naive NLP at %vms = %v; expected strong spurious preference (>1.5)", probe, nv)
	}
	if math.Abs(tv-1) > 0.3 {
		t.Fatalf("time-normalized NLP at %vms = %v; expected ~1 (no planted preference)", probe, tv)
	}
}

func TestEstimateEmptyInput(t *testing.T) {
	e := testEstimator(t, nil)
	if _, err := e.Estimate(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := e.EstimateTimeNormalized(nil); err == nil {
		t.Fatal("empty input accepted (normalized)")
	}
	failed := []telemetry.Record{{Time: 1, Action: telemetry.SelectMail, LatencyMS: 5, Failed: true}}
	if _, err := e.Estimate(failed); err == nil {
		t.Fatal("all-failed input accepted")
	}
}

func TestEstimateExcludesFailedRecords(t *testing.T) {
	src := rng.New(12)
	records := genRecords(src, timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 300 }, 0.3,
		func(timeutil.Millis) float64 { return 10 })
	// Poison with failed records at an extreme latency.
	for i := 0; i < len(records)/2; i++ {
		records = append(records, telemetry.Record{
			Time: records[i].Time, Action: telemetry.SelectMail,
			LatencyMS: 2900, UserID: 9, Failed: true,
		})
	}
	e := testEstimator(t, nil)
	c, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	// The 2900ms bin must hold no biased mass.
	idx := len(c.Biased) - 10 // bin centered at 2905
	for i := idx; i < len(c.Biased); i++ {
		if c.Biased[i] > 0 {
			t.Fatalf("failed records leaked into bin %d", i)
		}
	}
}

func TestCurveAtClampsRange(t *testing.T) {
	src := rng.New(13)
	records := genRecords(src, timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 300 }, 0.3,
		func(timeutil.Millis) float64 { return 10 })
	e := testEstimator(t, nil)
	c, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.At(-100); math.IsNaN(v) {
		t.Fatal("below-range At returned NaN")
	}
	if v, _ := c.At(1e9); math.IsNaN(v) {
		t.Fatal("above-range At returned NaN")
	}
}

func TestCurveNLPIsOneAtReference(t *testing.T) {
	src := rng.New(14)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 350 }, 0.5,
		func(timeutil.Millis) float64 { return 10 })
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 350 })
	c, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c.At(350)
	if !ok {
		t.Fatal("reference bin invalid")
	}
	if math.Abs(v-1) > 1e-9 {
		t.Fatalf("NLP at reference = %v", v)
	}
}

func TestCurvePrefCurveAndValidRange(t *testing.T) {
	src := rng.New(15)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 400 }, 0.4,
		func(timeutil.Millis) float64 { return 8 })
	e := testEstimator(t, nil)
	c, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := c.ValidRange()
	if !ok || lo >= hi {
		t.Fatalf("ValidRange = %v, %v, %v", lo, hi, ok)
	}
	pc, err := c.PrefCurve()
	if err != nil {
		t.Fatal(err)
	}
	mid := (lo + hi) / 2
	if v := pc.Eval(mid); v <= 0 {
		t.Fatalf("PrefCurve(%v) = %v", mid, v)
	}
}

func TestBiasedOnlyReflectsRawDistribution(t *testing.T) {
	// BiasedOnly of a latency-stationary series peaks at the latency
	// mode regardless of activity, so its NLP curve just mirrors B.
	src := rng.New(16)
	records := genRecords(src, timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 300 }, 0.2,
		func(timeutil.Millis) float64 { return 10 })
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	c, err := e.BiasedOnly(records)
	if err != nil {
		t.Fatal(err)
	}
	// Mass far from the mode is tiny, so the NLP there collapses toward
	// zero — the known pathology of skipping the U correction.
	v, _ := c.At(1500)
	if v > 0.2 {
		t.Fatalf("BiasedOnly NLP(1500) = %v, expected near zero", v)
	}
}

func TestDeterministicEstimates(t *testing.T) {
	records := confoundedRecords(17)
	e := testEstimator(t, nil)
	c1, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.NLP {
		if c1.NLP[i] != c2.NLP[i] {
			t.Fatalf("estimate not deterministic at bin %d", i)
		}
	}
}
