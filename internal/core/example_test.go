package core_test

import (
	"fmt"

	"autosens/internal/core"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// ExampleEstimator_Estimate shows the minimal AutoSens workflow: feed
// (time, action, latency) records to the estimator and read the normalized
// latency preference. The synthetic stream alternates fast (250 ms) and
// slow (900 ms) regimes every two hours, with users acting at half the
// rate during slow regimes — so the NLP at 900 ms comes out near 0.5.
func ExampleEstimator_Estimate() {
	src := rng.New(7)
	var records []telemetry.Record
	for m := timeutil.Millis(0); m < 4*timeutil.MillisPerDay; m += timeutil.MillisPerMinute {
		slow := (m/(2*timeutil.MillisPerHour))%2 == 1
		rate, median := 12.0, 250.0
		if slow {
			rate, median = 6, 900
		}
		for i := 0; i < src.Poisson(rate); i++ {
			records = append(records, telemetry.Record{
				Time:      m + timeutil.Millis(src.Intn(60000)),
				Action:    telemetry.SelectMail,
				LatencyMS: median * src.LogNormal(0, 0.2),
				UserID:    1,
			})
		}
	}

	opts := core.DefaultOptions()
	opts.ReferenceMS = 250
	est, err := core.NewEstimator(opts)
	if err != nil {
		panic(err)
	}
	curve, err := est.Estimate(records)
	if err != nil {
		panic(err)
	}
	v, _ := curve.At(900)
	fmt.Printf("NLP(900ms) is well below 1: %v\n", v < 0.65)
	ref, _ := curve.At(250)
	fmt.Printf("NLP(reference) = %.1f\n", ref)
	// Output:
	// NLP(900ms) is well below 1: true
	// NLP(reference) = 1.0
}

// ExamplePaperTable1 reproduces the worked normalization example of the
// paper's Table 1 exactly.
func ExamplePaperTable1() {
	res, err := core.PaperTable1().Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha(Night) = %.3f\n", res.Alpha[1])
	fmt.Printf("normalized night counts: %.0f and %.0f\n",
		res.NormalizedCounts[1][0], res.NormalizedCounts[1][1])
	fmt.Printf("activity when latency is low vs high: %.2f vs %.2f\n",
		res.NormalizedRate[0], res.NormalizedRate[1])
	// Output:
	// alpha(Night) = 0.104
	// normalized night counts: 250 and 38
	// activity when latency is low vs high: 3.09 vs 1.98
}
