package core

import (
	"errors"
	"sort"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// unbiasedSampler draws latency values for the unbiased distribution U per
// Section 2.2: pick a uniformly random time in the window and adopt the
// latency of the sample nearest in time; when several samples are equally
// near (same timestamp, or an exact midpoint), pick one at random.
type unbiasedSampler struct {
	times     []timeutil.Millis
	latencies []float64
}

// newUnbiasedSampler indexes time-sorted records. The records MUST already
// be sorted by Time.
func newUnbiasedSampler(sorted []telemetry.Record) *unbiasedSampler {
	s := &unbiasedSampler{
		times:     make([]timeutil.Millis, len(sorted)),
		latencies: make([]float64, len(sorted)),
	}
	for i, r := range sorted {
		s.times[i] = r.Time
		s.latencies[i] = r.LatencyMS
	}
	return s
}

// draw picks one unbiased latency for a random time in [lo, hi).
func (s *unbiasedSampler) draw(lo, hi timeutil.Millis, src *rng.Source) float64 {
	t := lo + timeutil.Millis(src.Uint64n(uint64(hi-lo)))
	return s.nearest(t, src)
}

// nearest returns the latency of the sample closest in time to t, breaking
// ties uniformly at random.
func (s *unbiasedSampler) nearest(t timeutil.Millis, src *rng.Source) float64 {
	n := len(s.times)
	idx := sort.Search(n, func(i int) bool { return s.times[i] >= t })
	// Candidate on each side of the insertion point.
	switch {
	case idx == 0:
		return s.pickRun(0, src)
	case idx == n:
		return s.pickRun(n-1, src)
	}
	dRight := s.times[idx] - t
	dLeft := t - s.times[idx-1]
	switch {
	case dLeft < dRight:
		return s.pickRun(idx-1, src)
	case dRight < dLeft:
		return s.pickRun(idx, src)
	default:
		// Exact midpoint: both sides are equally near.
		if src.Bool(0.5) {
			return s.pickRun(idx-1, src)
		}
		return s.pickRun(idx, src)
	}
}

// Draw is one unbiased-sampling pick: the uniformly random instant chosen
// and the latency of the telemetry sample nearest to it.
type Draw struct {
	At        timeutil.Millis
	LatencyMS float64
}

// UnbiasedDraws exposes the unbiased-sampling procedure of Section 2.2 for
// inspection (Figure 3(a) of the paper illustrates it): n uniformly random
// instants over the records' time span, each paired with the latency of
// the nearest sample. Failed records are excluded. The result is sorted by
// draw time.
func UnbiasedDraws(records []telemetry.Record, n int, seed uint64) ([]Draw, error) {
	records = usable(records)
	if len(records) == 0 {
		return nil, errEmptyRecords
	}
	if n <= 0 {
		return nil, errNonPositiveDraws
	}
	telemetry.SortByTime(records)
	s := newUnbiasedSampler(records)
	src := rng.New(seed)
	lo := records[0].Time
	hi := records[len(records)-1].Time + 1
	out := make([]Draw, n)
	for i := range out {
		t := lo + timeutil.Millis(src.Uint64n(uint64(hi-lo)))
		out[i] = Draw{At: t, LatencyMS: s.nearest(t, src)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}

var (
	errEmptyRecords     = errors.New("core: no usable records")
	errNonPositiveDraws = errors.New("core: non-positive draw count")
)

// pickRun returns a uniformly random latency among all samples sharing the
// timestamp of index i.
func (s *unbiasedSampler) pickRun(i int, src *rng.Source) float64 {
	t := s.times[i]
	lo, hi := i, i
	for lo > 0 && s.times[lo-1] == t {
		lo--
	}
	for hi+1 < len(s.times) && s.times[hi+1] == t {
		hi++
	}
	if lo == hi {
		return s.latencies[lo]
	}
	return s.latencies[lo+src.Intn(hi-lo+1)]
}
