package core

import (
	"errors"
	"slices"
	"sort"

	"autosens/internal/histogram"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// unbiasedSampler draws latency values for the unbiased distribution U per
// Section 2.2: pick a uniformly random time in the window and adopt the
// latency of the sample nearest in time; when several samples are equally
// near (same timestamp, or an exact midpoint), pick one at random.
type unbiasedSampler struct {
	times     []timeutil.Millis
	latencies []float64
}

// newUnbiasedSampler indexes time-sorted records. The records MUST already
// be sorted by Time.
func newUnbiasedSampler(sorted []telemetry.Record) *unbiasedSampler {
	s := &unbiasedSampler{
		times:     make([]timeutil.Millis, len(sorted)),
		latencies: make([]float64, len(sorted)),
	}
	for i, r := range sorted {
		s.times[i] = r.Time
		s.latencies[i] = r.LatencyMS
	}
	return s
}

// draw picks one unbiased latency for a random time in [lo, hi).
func (s *unbiasedSampler) draw(lo, hi timeutil.Millis, src *rng.Source) float64 {
	t := lo + timeutil.Millis(src.Uint64n(uint64(hi-lo)))
	return s.nearest(t, src)
}

// nearest returns the latency of the sample closest in time to t, breaking
// ties uniformly at random.
func (s *unbiasedSampler) nearest(t timeutil.Millis, src *rng.Source) float64 {
	n := len(s.times)
	idx := sort.Search(n, func(i int) bool { return s.times[i] >= t })
	// Candidate on each side of the insertion point.
	switch {
	case idx == 0:
		return s.pickRun(0, src)
	case idx == n:
		return s.pickRun(n-1, src)
	}
	dRight := s.times[idx] - t
	dLeft := t - s.times[idx-1]
	switch {
	case dLeft < dRight:
		return s.pickRun(idx-1, src)
	case dRight < dLeft:
		return s.pickRun(idx, src)
	default:
		// Exact midpoint: both sides are equally near.
		if src.Bool(0.5) {
			return s.pickRun(idx-1, src)
		}
		return s.pickRun(idx, src)
	}
}

// Draw is one unbiased-sampling pick: the uniformly random instant chosen
// and the latency of the telemetry sample nearest to it.
type Draw struct {
	At        timeutil.Millis
	LatencyMS float64
}

// UnbiasedDraws exposes the unbiased-sampling procedure of Section 2.2 for
// inspection (Figure 3(a) of the paper illustrates it): n uniformly random
// instants over the records' time span, each paired with the latency of
// the nearest sample. Failed records are excluded. The result is sorted by
// draw time.
func UnbiasedDraws(records []telemetry.Record, n int, seed uint64) ([]Draw, error) {
	records = usable(records)
	if len(records) == 0 {
		return nil, errEmptyRecords
	}
	if n <= 0 {
		return nil, errNonPositiveDraws
	}
	telemetry.SortByTime(records)
	s := newUnbiasedSampler(records)
	src := rng.New(seed)
	lo := records[0].Time
	hi := records[len(records)-1].Time + 1
	out := make([]Draw, n)
	for i := range out {
		t := lo + timeutil.Millis(src.Uint64n(uint64(hi-lo)))
		out[i] = Draw{At: t, LatencyMS: s.nearest(t, src)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}

var (
	errEmptyRecords     = errors.New("core: no usable records")
	errNonPositiveDraws = errors.New("core: non-positive draw count")
)

// sweepScratch holds the reusable draw-key buffer for batch unbiased
// sampling. A nil scratch allocates per call.
type sweepScratch struct {
	keys []uint64
}

func (sc *sweepScratch) buf(n int) []uint64 {
	if sc == nil {
		return make([]uint64, n)
	}
	if cap(sc.keys) < n {
		sc.keys = make([]uint64, n)
	}
	return sc.keys[:n]
}

// fillUnbiasedSweep accumulates n unbiased draws over [lo, hi) into every
// histogram in hists. times/lats are the time-sorted sample instants and
// their latencies (times MUST be ascending).
//
// Semantically it matches the per-draw path (uniform random instant, adopt
// the nearest sample's latency, break ties uniformly at random) but batches
// the work: all n instants are generated up front, sorted once, and merged
// against the sorted sample times in a single linear sweep. That replaces n
// binary searches with poor cache locality (O(n·log m) scattered probes)
// with one primitive-slice sort plus an O(n + m) sequential pass.
//
// Tie-break randomness is derived per draw from auxSeed and the draw's rank
// with Mix64 rather than consumed from src in nearest-neighbour order, so
// the result is a pure function of (times, lats, lo, hi, n, src state) —
// independent of sweep order, which is what makes the parallel bootstrap
// bit-identical at any worker count.
func fillUnbiasedSweep(times []timeutil.Millis, lats []float64, lo, hi timeutil.Millis, n int, src *rng.Source, sc *sweepScratch, hists ...*histogram.Histogram) {
	if n <= 0 || len(times) == 0 || hi <= lo {
		return
	}
	span := uint64(hi - lo)
	keys := sc.buf(n)
	for i := range keys {
		keys[i] = src.Uint64n(span)
	}
	auxSeed := src.Uint64()
	slices.Sort(keys)
	sweepSortedKeys(times, lats, lo, keys, auxSeed, hists...)
}

// sweepSortedKeys is the merge phase of the batch sweep: keys are sorted
// draw offsets from lo. It is read-only in keys, so one precomputed key
// set can be shared across bootstrap replicates (the draw instants depend
// only on the estimator seed, not on the replicate's block picks — see
// runPlainReplicate).
func sweepSortedKeys(times []timeutil.Millis, lats []float64, lo timeutil.Millis, keys []uint64, auxSeed uint64, hists ...*histogram.Histogram) {
	if len(keys) == 0 || len(times) == 0 {
		return
	}
	nRec := len(times)
	idx := 0 // first sample with times[idx] >= t; monotone over the sweep
	for k, key := range keys {
		t := lo + timeutil.Millis(key)
		for idx < nRec && times[idx] < t {
			idx++
		}
		var aux uint64
		hasAux := false
		var j int
		switch {
		case idx == 0:
			j = 0
		case idx == nRec:
			j = nRec - 1
		default:
			dLeft := t - times[idx-1]
			dRight := times[idx] - t
			switch {
			case dLeft < dRight:
				j = idx - 1
			case dRight < dLeft:
				j = idx
			default:
				// Exact midpoint: both sides are equally near.
				aux = rng.Mix64(auxSeed + uint64(k))
				hasAux = true
				if aux>>63 == 0 {
					j = idx - 1
				} else {
					j = idx
				}
			}
		}
		// Expand j's equal-timestamp run and pick uniformly within it.
		tj := times[j]
		rLo, rHi := j, j
		for rLo > 0 && times[rLo-1] == tj {
			rLo--
		}
		for rHi+1 < nRec && times[rHi+1] == tj {
			rHi++
		}
		v := lats[rLo]
		if rHi > rLo {
			if !hasAux {
				aux = rng.Mix64(auxSeed + uint64(k))
			}
			v = lats[rLo+int(aux%uint64(rHi-rLo+1))]
		}
		for _, h := range hists {
			h.Add(v)
		}
	}
}

// fillSweep is the sampler-side entry point to the batch sweep.
func (s *unbiasedSampler) fillSweep(lo, hi timeutil.Millis, n int, src *rng.Source, sc *sweepScratch, hists ...*histogram.Histogram) {
	fillUnbiasedSweep(s.times, s.latencies, lo, hi, n, src, sc, hists...)
}

// pickRun returns a uniformly random latency among all samples sharing the
// timestamp of index i.
func (s *unbiasedSampler) pickRun(i int, src *rng.Source) float64 {
	t := s.times[i]
	lo, hi := i, i
	for lo > 0 && s.times[lo-1] == t {
		lo--
	}
	for hi+1 < len(s.times) && s.times[hi+1] == t {
		hi++
	}
	if lo == hi {
		return s.latencies[lo]
	}
	return s.latencies[lo+src.Intn(hi-lo+1)]
}
