package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/obs"
	"autosens/internal/rng"
	"autosens/internal/stats"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// slotData holds the per-time-slot state needed by the α normalization.
// The batch path fills the time/latency columns directly; the streaming
// path fills the histograms incrementally and synthesizes the unbiased
// draws from a reservoir, setting count explicitly.
type slotData struct {
	slot    int
	count   int               // number of actions in the slot
	times   []timeutil.Millis // time-sorted slice of the slot's instants (batch path)
	lats    []float64         // latencies aligned with times (batch path)
	lo, hi  timeutil.Millis   // slot bounds clipped to the window
	fine    *histogram.Histogram
	fineU   *histogram.Histogram
	coarse  *histogram.Histogram
	coarseU *histogram.Histogram
}

// EstimateTimeNormalized computes the NLP curve with the full
// time-confounder mitigation of Section 2.4.1:
//
//  1. discretize time into SlotDuration slots and drop slots with fewer
//     than MinSlotActions actions;
//  2. per slot, build the biased counts c_T^L and the slot-local unbiased
//     distribution U_T (whose fractions are the time shares f_T^L);
//  3. for each of the ReferenceSlots busiest slots in turn, estimate each
//     slot's activity factor α_T as the mean over latency bins of
//     (c_T^L/f_T^L) / (c_R^L/f_R^L), divide the slot's counts by α_T, pool
//     all slots, and form the B/U ratio;
//  4. average the per-reference results, smooth, and normalize at the
//     reference latency.
func (e *Estimator) EstimateTimeNormalized(records []telemetry.Record) (*Curve, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate_time_normalized")
	defer sp.End()
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	sp.SetAttr("records", len(records))
	telemetry.SortByTime(records)
	times, lats := columnsOf(records)
	return e.estimateTimeNormalizedColumns(sp, times, lats)
}

// estimateTimeNormalizedColumns is EstimateTimeNormalized minus the
// usable-filter and sort, for callers who already hold the filtered,
// time-sorted columns (the bootstrap's resampled replicates are sorted by
// construction, so re-sorting them every replicate would be pure waste;
// the live engine's shard merge yields sorted columns directly).
func (e *Estimator) estimateTimeNormalizedColumns(sp *obs.Span, times []timeutil.Millis, lats []float64) (*Curve, error) {
	src := rng.New(e.opts.Seed)
	slots := e.buildSlots(sp, times, lats, src)
	return e.poolNormalized(sp, slots, len(times))
}

// poolNormalized runs the per-reference α pooling over prepared slots and
// averages the resulting curves. totalN is reported as the curve's biased
// sample count. Stage spans are recorded under sp (which may be nil).
func (e *Estimator) poolNormalized(sp *obs.Span, slots []*slotData, totalN int) (*Curve, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("core: no slot reaches %d actions; use a longer window or coarser slots", e.opts.MinSlotActions)
	}

	// Busiest slots first for the rotating reference.
	byCount := make([]*slotData, len(slots))
	copy(byCount, slots)
	sort.Slice(byCount, func(i, j int) bool { return byCount[i].count > byCount[j].count })
	numRefs := e.opts.ReferenceSlots
	if numRefs > len(byCount) {
		numRefs = len(byCount)
	}

	// Each reference's α pooling is independent of the others (slots are
	// read-only here), so references fan out across the worker pool.
	// Results are collected by rank and merged in rank order below, so the
	// averaged curve and the reported firstErr are worker-count invariant.
	refCurves := make([]*Curve, numRefs)
	refErrs := make([]error, numRefs)
	e.forEachIndex(numRefs, func(r int) {
		refCurves[r], refErrs[r] = e.poolOneReference(sp, slots, byCount[r], r, totalN)
	})
	var curves []*Curve
	var firstErr error
	for r := 0; r < numRefs; r++ {
		if refErrs[r] != nil {
			if firstErr == nil {
				firstErr = refErrs[r]
			}
			continue
		}
		if refCurves[r] != nil {
			curves = append(curves, refCurves[r])
		}
	}
	if len(curves) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("core: no usable reference slot for time normalization")
	}
	avgSp := sp.StartChild("average_curves")
	avgSp.SetAttr("references", len(curves))
	out := averageCurves(curves)
	avgSp.End()
	return out, nil
}

// poolOneReference computes one reference slot's α-normalized pooled
// curve. It returns (nil, nil) when the reference has no usable bins and
// is skipped.
func (e *Estimator) poolOneReference(sp *obs.Span, slots []*slotData, ref *slotData, rank, totalN int) (*Curve, error) {
	refSp := sp.StartChild("alpha_reference")
	defer refSp.End()
	refSp.SetAttr("rank", rank)
	refSp.SetAttr("slot", ref.slot)
	alphas, ok := alphaAgainst(slots, ref, e.opts.MinAlphaBinCount)
	if !ok {
		refSp.SetAttr("skipped", "reference has no usable bins")
		return nil, nil
	}
	// Pool B and U over exactly the same slots: a slot whose α is
	// unusable must be excluded from both, or its unbiased mass
	// would depress the ratio wherever that slot's latency lived.
	bPool := e.newHist()
	uPool := e.newHist()
	pooled := 0
	for i, sd := range slots {
		a := alphas[i]
		if math.IsNaN(a) || a <= 0 {
			continue
		}
		for bin := 0; bin < sd.fine.Bins(); bin++ {
			if c := sd.fine.Count(bin); c > 0 {
				bPool.SetCount(bin, bPool.Count(bin)+c/a)
			}
		}
		if err := uPool.AddHistogram(sd.fineU); err != nil {
			return nil, err
		}
		pooled++
	}
	refSp.SetAttr("pooled_slots", pooled)
	return e.finishCurve(refSp, bPool, uPool, totalN, int(uPool.Total()))
}

// buildSlots groups time-sorted records into slots, drops thin slots, and
// builds each retained slot's biased histograms (fine and coarse) and
// unbiased draws.
//
// Unbiased draws are allotted per unit of slot *time*, not per action:
// after α normalization the pooled biased counts weight every slot's time
// equally, so the pooled unbiased distribution must too — otherwise busy
// (and typically slow) slots would dominate U and skew the ratio.
func (e *Estimator) buildSlots(sp *obs.Span, times []timeutil.Millis, lats []float64, src *rng.Source) []*slotData {
	partSp := sp.StartChild("partition_slots")
	windowLo := times[0]
	windowHi := times[len(times)-1] + 1
	var slots []*slotData
	for i := 0; i < len(times); {
		slot := int(times[i] / e.opts.SlotDuration)
		j := i
		for j < len(times) && int(times[j]/e.opts.SlotDuration) == slot {
			j++
		}
		if j-i >= e.opts.MinSlotActions {
			sd := &slotData{
				slot:  slot,
				count: j - i,
				times: times[i:j],
				lats:  lats[i:j],
				lo:    maxMillis(timeutil.Millis(slot)*e.opts.SlotDuration, windowLo),
				hi:    minMillis(timeutil.Millis(slot+1)*e.opts.SlotDuration, windowHi),
			}
			slots = append(slots, sd)
		}
		i = j
	}
	partSp.SetAttr("slots", len(slots))
	partSp.End()
	if len(slots) == 0 {
		return nil
	}

	bSp := sp.StartChild("build_biased_histograms")
	e.forEachIndex(len(slots), func(i int) {
		e.fillSlotBiased(slots[i])
	})
	bSp.SetAttr("slots", len(slots))
	bSp.End()

	uSp := sp.StartChild("sample_unbiased")
	totalDraws := math.Ceil(float64(len(times)) * e.opts.UnbiasedPerSample)
	var totalDur timeutil.Millis
	for _, sd := range slots {
		totalDur += sd.hi - sd.lo
	}
	// Quotas and per-slot RNG streams are derived serially in slot order
	// (Split advances src), then the fills — the expensive part — fan out
	// across the worker pool with bit-identical results at any width.
	quotas := make([]int, len(slots))
	srcs := make([]*rng.Source, len(slots))
	draws := 0
	for i, sd := range slots {
		quotas[i] = int(math.Ceil(totalDraws * float64(sd.hi-sd.lo) / float64(totalDur)))
		draws += quotas[i]
		srcs[i] = src.Split(uint64(i))
	}
	e.forEachIndex(len(slots), func(i int) {
		e.fillSlotUnbiased(slots[i], quotas[i], srcs[i])
	})
	uSp.SetAttr("draws", draws)
	uSp.End()
	return slots
}

// fillSlotBiased populates a slot's fine/coarse biased histograms.
func (e *Estimator) fillSlotBiased(sd *slotData) {
	sd.fine = e.newHist()
	sd.coarse = histogram.MustNew(0, e.opts.MaxLatencyMS, e.opts.AlphaBinWidthMS)
	for _, v := range sd.lats {
		sd.fine.Add(v)
		sd.coarse.Add(v)
	}
}

// fillSlotUnbiased adds the given quota of unbiased draws over the slot's
// time range, batch-sweeping them into the fine and coarse histograms at
// once.
func (e *Estimator) fillSlotUnbiased(sd *slotData, draws int, src *rng.Source) {
	sd.fineU = e.newHist()
	sd.coarseU = histogram.MustNew(0, e.opts.MaxLatencyMS, e.opts.AlphaBinWidthMS)
	fillUnbiasedSweep(sd.times, sd.lats, sd.lo, sd.hi, draws, src, nil, sd.fineU, sd.coarseU)
}

// alphaAgainst estimates each slot's α relative to the reference slot,
// using the coarse histograms: α_T = mean over latency bins L of
// (c_T^L/f_T^L)/(c_R^L/f_R^L) over bins where both slots have at least
// minCount actions and unbiased support. Returns ok=false when the
// reference slot itself yields no usable bins.
func alphaAgainst(slots []*slotData, ref *slotData, minCount float64) ([]float64, bool) {
	refRate, refOK := binRates(ref, minCount)
	if !refOK {
		return nil, false
	}
	out := make([]float64, len(slots))
	for i, sd := range slots {
		if sd == ref {
			out[i] = 1
			continue
		}
		rate, ok := binRates(sd, minCount)
		if !ok {
			out[i] = math.NaN()
			continue
		}
		var ratios []float64
		for bin := range rate {
			if !math.IsNaN(rate[bin]) && !math.IsNaN(refRate[bin]) && refRate[bin] > 0 {
				ratios = append(ratios, rate[bin]/refRate[bin])
			}
		}
		if len(ratios) == 0 {
			out[i] = math.NaN()
			continue
		}
		m, err := stats.Mean(ratios)
		if err != nil || m <= 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = m
	}
	return out, true
}

// binRates returns the per-coarse-bin temporal action rate c^L/f^L of a
// slot (NaN where under-supported), and whether any bin is usable.
func binRates(sd *slotData, minCount float64) ([]float64, bool) {
	bins := sd.coarse.Bins()
	out := make([]float64, bins)
	uTotal := sd.coarseU.Total()
	any := false
	for bin := 0; bin < bins; bin++ {
		c := sd.coarse.Count(bin)
		u := sd.coarseU.Count(bin)
		if c < minCount || u < minCount || uTotal == 0 {
			out[bin] = math.NaN()
			continue
		}
		f := u / uTotal
		out[bin] = c / f
		any = true
	}
	return out, any
}

// averageCurves pointwise-averages curves produced from the same binning
// (they differ in the α reference and therefore in which slots were
// pooled). NaN raw entries are skipped per bin; a bin is valid when it is
// valid under every reference.
func averageCurves(cs []*Curve) *Curve {
	first := cs[0]
	if len(cs) == 1 {
		return first
	}
	n := len(first.NLP)
	out := &Curve{
		BinCenters:  first.BinCenters,
		ReferenceMS: first.ReferenceMS,
		BiasedN:     first.BiasedN,
		UnbiasedN:   first.UnbiasedN,
		Biased:      make([]float64, n),
		Unbiased:    make([]float64, n),
		Raw:         make([]float64, n),
		Smoothed:    make([]float64, n),
		NLP:         make([]float64, n),
		Valid:       make([]bool, n),
	}
	for i := 0; i < n; i++ {
		var rawSum float64
		rawN := 0
		out.Valid[i] = true
		for _, c := range cs {
			out.Biased[i] += c.Biased[i] / float64(len(cs))
			out.Unbiased[i] += c.Unbiased[i] / float64(len(cs))
			out.Smoothed[i] += c.Smoothed[i] / float64(len(cs))
			out.NLP[i] += c.NLP[i] / float64(len(cs))
			out.Valid[i] = out.Valid[i] && c.Valid[i]
			if !math.IsNaN(c.Raw[i]) {
				rawSum += c.Raw[i]
				rawN++
			}
		}
		if rawN > 0 {
			out.Raw[i] = rawSum / float64(rawN)
		} else {
			out.Raw[i] = math.NaN()
		}
	}
	return out
}

func maxMillis(a, b timeutil.Millis) timeutil.Millis {
	if a > b {
		return a
	}
	return b
}

func minMillis(a, b timeutil.Millis) timeutil.Millis {
	if a < b {
		return a
	}
	return b
}
