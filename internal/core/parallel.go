package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves a Workers knob against the number of independent
// units: 0 means GOMAXPROCS, and the result never exceeds n.
func workerCount(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachIndex runs fn(i) for every i in [0, n) across the estimator's
// worker pool. fn must be safe to call concurrently for distinct indices
// and must not depend on invocation order: every caller derives per-index
// randomness up front (rng.Source.Split with the index as key), so the
// output is bit-identical at any worker count.
func (e *Estimator) forEachIndex(n int, fn func(int)) {
	ForEachIndex(e.opts.Workers, n, fn)
}

// ForEachIndex runs fn(i) for every i in [0, n) on a pool of workers
// goroutines (0 means GOMAXPROCS; the pool never exceeds n). fn must be
// safe to call concurrently for distinct indices and must not depend on
// invocation order. This is the same pool the estimator's internal stages
// run on; other packages (the live query engine's dirty-shard recompute)
// reuse it so per-index work is scheduled identically everywhere.
func ForEachIndex(workers, n int, fn func(int)) {
	workers = workerCount(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
