package core

import (
	"errors"
	"math"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/obs"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// The column-based entry points below are the estimator's incremental-
// friendly surface: callers that already hold the usable (non-failed)
// records as time-sorted flat columns — the live query engine's sharded
// store, the bootstrap's resampled replicates — estimate directly from
// (times, lats) without materializing []telemetry.Record. Every column
// path is bit-identical to its record-based counterpart: the record paths
// are thin wrappers that extract the columns and delegate.

var (
	errColumnLengths   = errors.New("core: times and lats differ in length")
	errColumnsUnsorted = errors.New("core: times are not ascending")
)

// columnsOf extracts the flat time/latency columns of time-sorted records.
func columnsOf(sorted []telemetry.Record) ([]timeutil.Millis, []float64) {
	times := make([]timeutil.Millis, len(sorted))
	lats := make([]float64, len(sorted))
	for i := range sorted {
		times[i] = sorted[i].Time
		lats[i] = sorted[i].LatencyMS
	}
	return times, lats
}

// checkColumns validates the shared column preconditions.
func checkColumns(times []timeutil.Millis, lats []float64) error {
	if len(times) != len(lats) {
		return errColumnLengths
	}
	if len(times) == 0 {
		return errEmptyRecords
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return errColumnsUnsorted
		}
	}
	return nil
}

// Scratch holds reusable estimator buffers — histograms and the unbiased
// draw-key plan — so repeated column-based estimations (live-engine epoch
// recomputes, benchmark loops) allocate only their output curve. The zero
// value is ready to use; a Scratch must not be shared across concurrent
// estimations.
type Scratch struct {
	b, u  *histogram.Histogram
	sweep sweepScratch
}

// biased returns the scratch biased histogram, reset, allocating it on
// first use against e's binning.
func (sc *Scratch) biased(e *Estimator) *histogram.Histogram {
	if sc.b == nil {
		sc.b = e.newHist()
	} else {
		sc.b.Reset()
	}
	return sc.b
}

// unbiased returns the scratch unbiased histogram, reset.
func (sc *Scratch) unbiased(e *Estimator) *histogram.Histogram {
	if sc.u == nil {
		sc.u = e.newHist()
	} else {
		sc.u.Reset()
	}
	return sc.u
}

// EstimateColumns computes the plain pooled NLP curve (Sections 2.2–2.3)
// directly from time-sorted columns of usable records. It is bit-identical
// to Estimate over records with the same times and latencies. sc may be
// nil; a non-nil scratch is reused across calls.
func (e *Estimator) EstimateColumns(times []timeutil.Millis, lats []float64, sc *Scratch) (*Curve, error) {
	return e.EstimateFromParts(nil, times, lats, sc)
}

// EstimateFromParts is EstimateColumns for callers that additionally
// maintain the biased histogram incrementally: b, when non-nil, must hold
// exactly the counts of lats under e's binning (the biased histogram is a
// pure append, so an incrementally maintained copy is exact) and is used
// read-only in place of a fresh build. The unbiased distribution depends
// on the whole timeline and draw count, so it is always resampled here.
func (e *Estimator) EstimateFromParts(b *histogram.Histogram, times []timeutil.Millis, lats []float64, sc *Scratch) (*Curve, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate")
	defer sp.End()
	if err := checkColumns(times, lats); err != nil {
		return nil, err
	}
	sp.SetAttr("records", len(times))
	return e.estimateColumns(sp, b, times, lats, sc)
}

// estimateColumns is the shared plain-estimator core over sorted columns.
// A nil b builds the biased histogram here; a nil sc allocates privately.
func (e *Estimator) estimateColumns(sp *obs.Span, b *histogram.Histogram, times []timeutil.Millis, lats []float64, sc *Scratch) (*Curve, error) {
	src := rng.New(e.opts.Seed)
	if b == nil {
		bSp := sp.StartChild("build_biased_histogram")
		if sc != nil {
			b = sc.biased(e)
		} else {
			b = e.newHist()
		}
		for _, v := range lats {
			b.Add(v)
		}
		bSp.SetAttr("samples", len(lats))
		bSp.End()
	}

	uSp := sp.StartChild("sample_unbiased")
	draws := int(math.Ceil(float64(len(times)) * e.opts.UnbiasedPerSample))
	var u *histogram.Histogram
	var sweep *sweepScratch
	if sc != nil {
		u = sc.unbiased(e)
		sweep = &sc.sweep
	} else {
		u = e.newHist()
	}
	lo := times[0]
	hi := times[len(times)-1] + 1
	fillUnbiasedSweep(times, lats, lo, hi, draws, src, sweep, u)
	uSp.SetAttr("draws", draws)
	uSp.End()

	return e.finishCurve(sp, b, u, len(times), draws)
}

// EstimateTimeNormalizedColumns computes the full time-normalized NLP
// curve (Section 2.4.1) directly from time-sorted columns of usable
// records, bit-identical to EstimateTimeNormalized over records with the
// same times and latencies.
func (e *Estimator) EstimateTimeNormalizedColumns(times []timeutil.Millis, lats []float64) (*Curve, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate_time_normalized")
	defer sp.End()
	if err := checkColumns(times, lats); err != nil {
		return nil, err
	}
	sp.SetAttr("records", len(times))
	return e.estimateTimeNormalizedColumns(sp, times, lats)
}
