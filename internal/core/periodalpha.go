package core

import (
	"errors"
	"math"
	"sort"

	"autosens/internal/histogram"
	"autosens/internal/rng"
	"autosens/internal/stats"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// AlphaProfile is the time-based activity factor α evaluated per 6-hour
// local period — the quantity plotted in Figure 8 of the paper. PerBin
// holds α per latency bin before the averaging step (the figure shows it is
// roughly flat in latency, which justifies averaging); Mean is the averaged
// α for the period.
type AlphaProfile struct {
	BinCenters []float64
	PerBin     [timeutil.NumPeriods][]float64
	Mean       [timeutil.NumPeriods]float64
	Reference  timeutil.Period
}

// interval is a half-open absolute time range.
type interval struct{ lo, hi timeutil.Millis }

// periodStartHour maps each period to its local start hour.
func periodStartHour(p timeutil.Period) int {
	switch p {
	case timeutil.Period8am2pm:
		return 8
	case timeutil.Period2pm8pm:
		return 14
	case timeutil.Period8pm2am:
		return 20
	default:
		return 2
	}
}

// periodIntervals enumerates the absolute-time intervals during which a
// user at tzOffset is inside period p, clipped to [windowLo, windowHi).
func periodIntervals(p timeutil.Period, tz timeutil.Millis, windowLo, windowHi timeutil.Millis) []interval {
	h0 := timeutil.Millis(periodStartHour(p)) * timeutil.MillisPerHour
	const span = 6 * timeutil.MillisPerHour
	firstDay := timeutil.DayIndex(windowLo, tz) - 1
	lastDay := timeutil.DayIndex(windowHi, tz) + 1
	var out []interval
	for d := firstDay; d <= lastDay; d++ {
		localStart := timeutil.Millis(d)*timeutil.MillisPerDay + h0
		lo := localStart - tz
		hi := lo + span
		if lo < windowLo {
			lo = windowLo
		}
		if hi > windowHi {
			hi = windowHi
		}
		if lo < hi {
			out = append(out, interval{lo, hi})
		}
	}
	return out
}

// intervalSampler draws uniform times over a union of disjoint intervals.
type intervalSampler struct {
	ivs   []interval
	cum   []timeutil.Millis // cumulative lengths
	total timeutil.Millis
}

func newIntervalSampler(ivs []interval) *intervalSampler {
	s := &intervalSampler{ivs: ivs, cum: make([]timeutil.Millis, len(ivs))}
	for i, iv := range ivs {
		s.total += iv.hi - iv.lo
		s.cum[i] = s.total
	}
	return s
}

// draw returns a uniformly random time within the union.
func (s *intervalSampler) draw(src *rng.Source) timeutil.Millis {
	off := timeutil.Millis(src.Uint64n(uint64(s.total)))
	i := sort.Search(len(s.cum), func(k int) bool { return s.cum[k] > off })
	prev := timeutil.Millis(0)
	if i > 0 {
		prev = s.cum[i-1]
	}
	return s.ivs[i].lo + (off - prev)
}

// AlphaByPeriod estimates the time-based activity factor α for each of the
// four 6-hour local periods relative to the given reference period
// (Figure 8 uses 8am–2pm). Records are grouped by the user's local period;
// each period's unbiased distribution is sampled from random times inside
// that period's absolute intervals, per represented timezone.
func (e *Estimator) AlphaByPeriod(records []telemetry.Record, ref timeutil.Period) (*AlphaProfile, error) {
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	telemetry.SortByTime(records)
	src := rng.New(e.opts.Seed)
	windowLo := records[0].Time
	windowHi := records[len(records)-1].Time + 1

	// Group by (period, tz).
	type key struct {
		p  timeutil.Period
		tz timeutil.Millis
	}
	groups := make(map[key][]telemetry.Record)
	for _, r := range records {
		k := key{timeutil.PeriodOf(r.Time, r.TZOffset), r.TZOffset}
		groups[k] = append(groups[k], r)
	}

	// Per-period biased and unbiased coarse histograms.
	var biased, unbiased [timeutil.NumPeriods]*histogram.Histogram
	for p := 0; p < timeutil.NumPeriods; p++ {
		biased[p] = histogram.MustNew(0, e.opts.MaxLatencyMS, e.opts.AlphaBinWidthMS)
		unbiased[p] = histogram.MustNew(0, e.opts.MaxLatencyMS, e.opts.AlphaBinWidthMS)
	}
	for k, rs := range groups {
		for _, r := range rs {
			biased[k.p].Add(r.LatencyMS)
		}
		ivs := periodIntervals(k.p, k.tz, windowLo, windowHi)
		if len(ivs) == 0 {
			continue
		}
		sampler := newUnbiasedSampler(rs)
		times := newIntervalSampler(ivs)
		draws := int(math.Ceil(float64(len(rs)) * e.opts.UnbiasedPerSample))
		for i := 0; i < draws; i++ {
			unbiased[k.p].Add(sampler.nearest(times.draw(src), src))
		}
	}

	// Rates and α.
	prof := &AlphaProfile{Reference: ref}
	bins := biased[0].Bins()
	prof.BinCenters = make([]float64, bins)
	for i := range prof.BinCenters {
		prof.BinCenters[i] = biased[0].Center(i)
	}
	refRate, ok := periodRates(biased[ref], unbiased[ref], e.opts.MinAlphaBinCount)
	if !ok {
		return nil, errors.New("core: reference period has no usable latency bins")
	}
	// Periods cover equal spans of time, so rates are directly
	// comparable without duration scaling.
	for p := 0; p < timeutil.NumPeriods; p++ {
		prof.PerBin[p] = make([]float64, bins)
		if timeutil.Period(p) == ref {
			for i := range prof.PerBin[p] {
				if math.IsNaN(refRate[i]) {
					prof.PerBin[p][i] = math.NaN()
				} else {
					prof.PerBin[p][i] = 1
				}
			}
			prof.Mean[p] = 1
			continue
		}
		rate, ok := periodRates(biased[p], unbiased[p], e.opts.MinAlphaBinCount)
		if !ok {
			for i := range prof.PerBin[p] {
				prof.PerBin[p][i] = math.NaN()
			}
			prof.Mean[p] = math.NaN()
			continue
		}
		for i := 0; i < bins; i++ {
			if math.IsNaN(rate[i]) || math.IsNaN(refRate[i]) || refRate[i] <= 0 {
				prof.PerBin[p][i] = math.NaN()
			} else {
				prof.PerBin[p][i] = rate[i] / refRate[i]
			}
		}
		if m, err := stats.MeanIgnoringNaN(prof.PerBin[p]); err == nil {
			prof.Mean[p] = m
		} else {
			prof.Mean[p] = math.NaN()
		}
	}
	return prof, nil
}

// periodRates mirrors binRates for period histograms.
func periodRates(b, u *histogram.Histogram, minCount float64) ([]float64, bool) {
	bins := b.Bins()
	out := make([]float64, bins)
	uTotal := u.Total()
	any := false
	for i := 0; i < bins; i++ {
		c := b.Count(i)
		uc := u.Count(i)
		if c < minCount || uc < minCount || uTotal == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = c / (uc / uTotal)
		any = true
	}
	return out, any
}
