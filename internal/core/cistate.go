package core

import (
	"fmt"
	"sort"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/timeutil"
)

// CIState retains the exact moving-block bootstrap's precomputed inputs
// across epochs so that re-estimating confidence bounds after a data fold
// redoes only delta work before the replicates run:
//
//   - per-block biased histograms fold new records in O(delta) (a record's
//     block is a pure function of its instant, and histogram adds commute);
//   - block index ranges are re-derived by binary search, O(blocks·log n),
//     instead of an O(n) rescan;
//   - the shared replicate sweep-key schedule lives in an UnbiasedPlan, so
//     a grown draw count extends the retained key stream instead of
//     re-drawing and re-sorting all O(draws) keys;
//   - per-worker replicate scratch (resampled columns, histograms) is
//     pooled, so steady-state re-estimation allocates nothing per epoch.
//
// The replicates themselves are rerun in full through the same bootstrapCI
// the batch path uses — that is what keeps EstimateCIIncremental
// bit-identical to EstimateCIColumns. (Replicate sweeps dominate the
// remaining cost; the flag-gated BootSketch trades exactness for making
// that part incremental too.)
//
// CIState is single-goroutine state, owned by its Incremental.
type CIState struct {
	blockLen  timeutil.Millis
	windowLo  timeutil.Millis
	numBlocks int
	valid     bool
	hists     []*histogram.Histogram
	ranges    [][2]int
	plan      UnbiasedPlan
	scs       []*ciScratch
}

// foldRecords keeps the per-block histograms current for a delta. Deltas
// that move the observation window (or arrive before any refresh) just
// invalidate; the next estimate rebuilds.
func (st *CIState) foldRecords(dTimes []timeutil.Millis, dLats []float64, windowKept bool) {
	if !st.valid {
		return
	}
	if !windowKept {
		st.valid = false
		return
	}
	for i, t := range dTimes {
		b := int((t - st.windowLo) / st.blockLen)
		if b < 0 || b >= len(st.hists) {
			st.valid = false
			return
		}
		st.hists[b].Add(dLats[i])
	}
}

// refresh makes the retained state current for the columns and returns the
// assembled block partition, rebuilding from scratch only when the window
// or block length moved.
func (st *CIState) refresh(e *Estimator, times []timeutil.Millis, lats []float64, blockLen timeutil.Millis) (*bootBlocks, error) {
	windowLo := times[0]
	numBlocks := int((times[len(times)-1]-windowLo)/blockLen) + 1
	if numBlocks < 2 {
		return nil, fmt.Errorf("core: window shorter than two %v-ms blocks", blockLen)
	}
	if !st.valid || st.blockLen != blockLen || st.windowLo != windowLo || st.numBlocks != numBlocks {
		st.blockLen, st.windowLo, st.numBlocks = blockLen, windowLo, numBlocks
		if len(st.hists) != numBlocks {
			st.hists = make([]*histogram.Histogram, numBlocks)
		}
		for b := range st.hists {
			if st.hists[b] == nil {
				st.hists[b] = e.newHist()
			} else {
				st.hists[b].Reset()
			}
		}
		for i, t := range times {
			st.hists[int((t-windowLo)/blockLen)].Add(lats[i])
		}
		st.valid = true
	}
	if cap(st.ranges) < numBlocks {
		st.ranges = make([][2]int, numBlocks)
	}
	st.ranges = st.ranges[:numBlocks]
	for b := 0; b < numBlocks; b++ {
		edge := windowLo + timeutil.Millis(b+1)*blockLen
		end := sort.Search(len(times), func(i int) bool { return times[i] >= edge })
		start := 0
		if b > 0 {
			start = st.ranges[b-1][1]
		}
		st.ranges[b] = [2]int{start, end}
	}
	draws := drawCount(len(times), e.opts.UnbiasedPerSample)
	span := uint64(timeutil.Millis(numBlocks) * blockLen)
	st.plan.update(e.opts.Seed, span, draws)
	return &bootBlocks{
		blockLen:  blockLen,
		windowLo:  windowLo,
		times:     times,
		lats:      lats,
		ranges:    st.ranges,
		hists:     st.hists,
		sweepKeys: st.plan.sorted,
		auxSeed:   st.plan.auxSeed,
	}, nil
}

// EstimateCIIncremental computes the plain NLP curve with exact
// moving-block bootstrap bounds over an Incremental's folded records,
// bit-identical to EstimateCIColumns over the same columns, reusing the
// retained CIState (attached to inc on first use) across epochs.
//
// The time-normalized estimator has no delta-maintained path; normalized
// requests fall through to the batch bootstrap.
func (e *Estimator) EstimateCIIncremental(inc *Incremental, opts CIOptions) (*CurveCI, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	times, lats := inc.Columns()
	if opts.TimeNormalized {
		return e.EstimateCIColumns(times, lats, opts)
	}
	if err := checkColumns(times, lats); err != nil {
		return nil, err
	}
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate_ci_incremental")
	defer sp.End()
	sp.SetAttr("records", len(times))

	point, err := inc.EstimatePlain()
	if err != nil {
		return nil, err
	}
	if inc.CI == nil {
		inc.CI = &CIState{}
	}
	bb, err := inc.CI.refresh(e, times, lats, opts.BlockLen)
	if err != nil {
		return nil, err
	}
	return e.bootstrapCI(sp, point, bb, opts, inc.CI)
}
