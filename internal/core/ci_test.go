package core

import (
	"math"
	"testing"

	"autosens/internal/timeutil"
)

func smallCIOptions() CIOptions {
	o := DefaultCIOptions()
	o.Resamples = 12
	return o
}

func TestCIOptionsValidate(t *testing.T) {
	if err := DefaultCIOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*CIOptions){
		func(o *CIOptions) { o.Resamples = 1 },
		func(o *CIOptions) { o.BlockLen = 0 },
		func(o *CIOptions) { o.Confidence = 0 },
		func(o *CIOptions) { o.Confidence = 1 },
		func(o *CIOptions) { o.MinSupport = 1.5 },
		func(o *CIOptions) { o.Workers = -1 },
	}
	for i, mut := range mutations {
		o := DefaultCIOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestEstimateCIBasics(t *testing.T) {
	records := confoundedRecords(51)
	e := testEstimator(t, nil)
	ci, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ci.Replicates < 10 {
		t.Fatalf("only %d replicates succeeded", ci.Replicates)
	}
	// The point estimate must lie inside (or at least near) the band
	// wherever the band is defined; bounds must be ordered.
	inside, total := 0, 0
	for i := range ci.NLP {
		lo, hi := ci.Lower[i], ci.Upper[i]
		if math.IsNaN(lo) || math.IsNaN(hi) {
			continue
		}
		if lo > hi {
			t.Fatalf("bounds inverted at bin %d: [%v, %v]", i, lo, hi)
		}
		total++
		if ci.NLP[i] >= lo-0.1 && ci.NLP[i] <= hi+0.1 {
			inside++
		}
	}
	if total == 0 {
		t.Fatal("no bin has a confidence band")
	}
	if float64(inside)/float64(total) < 0.8 {
		t.Fatalf("point estimate outside band in %d of %d bins", total-inside, total)
	}
}

func TestEstimateCIBoundsAccessor(t *testing.T) {
	records := confoundedRecords(52)
	e := testEstimator(t, nil)
	ci, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := ci.Bounds(400)
	if !ok {
		t.Fatal("no band at a well-supported latency")
	}
	if !(lo <= hi) {
		t.Fatalf("Bounds(400) = [%v, %v]", lo, hi)
	}
}

func TestEstimateCIWindowTooShort(t *testing.T) {
	e := testEstimator(t, nil)
	var records = []struct{}{}
	_ = records
	// All records inside one block: cannot bootstrap blocks.
	rs := confoundedRecords(53)
	opts := smallCIOptions()
	opts.BlockLen = 365 * timeutil.MillisPerDay
	if _, err := e.EstimateCI(rs, opts); err == nil {
		t.Fatal("single-block window accepted")
	}
}

func TestEstimateCIDeterministic(t *testing.T) {
	records := confoundedRecords(54)
	e := testEstimator(t, nil)
	a, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Lower {
		al, bl := a.Lower[i], b.Lower[i]
		if math.IsNaN(al) != math.IsNaN(bl) || (!math.IsNaN(al) && al != bl) {
			t.Fatalf("CI not deterministic at bin %d", i)
		}
	}
}

func TestEstimateCIWiderAtTail(t *testing.T) {
	// Sparse high-latency bins should carry wider (or absent) bands than
	// the well-populated core around the latency mode.
	records := confoundedRecords(55)
	e := testEstimator(t, nil)
	ci, err := e.EstimateCI(records, smallCIOptions())
	if err != nil {
		t.Fatal(err)
	}
	width := func(ms float64) float64 {
		lo, hi, ok := ci.Bounds(ms)
		if !ok {
			return math.Inf(1) // absent band counts as widest
		}
		return hi - lo
	}
	if width(400) > width(900) {
		t.Fatalf("band at mode (%v) wider than tail (%v)", width(400), width(900))
	}
}
