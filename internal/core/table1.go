package core

import (
	"errors"
	"math"
)

// WorkedExample reproduces the arithmetic of Table 1: time-confounder
// normalization on a discrete (slot × latency-bin) contingency table of
// action counts and time fractions. It exists both as executable
// documentation of the α method and as the exact-value reproduction target
// for the paper's Table 1.
type WorkedExample struct {
	// Slots and Bins name the rows and columns.
	Slots []string
	Bins  []string
	// Counts[s][b] is the number of actions in slot s at latency bin b.
	Counts [][]float64
	// TimeFrac[s][b] is the fraction of slot s's time spent at latency
	// bin b (each row sums to 1).
	TimeFrac [][]float64
	// RefSlot is the index of the reference slot for normalization.
	RefSlot int
}

// WorkedExampleResult carries every intermediate quantity of the
// normalization so the Table 1 numbers can be checked one by one.
type WorkedExampleResult struct {
	// AlphaPerBin[s][b] is α for slot s estimated from bin b alone.
	AlphaPerBin [][]float64
	// Alpha[s] is the per-slot activity factor (mean of AlphaPerBin[s]).
	Alpha []float64
	// NormalizedCounts[s][b] is Counts[s][b] / Alpha[s].
	NormalizedCounts [][]float64
	// NaiveRate[b] is the per-bin activity level computed by pooling raw
	// counts over raw time fractions — the confounded estimate.
	NaiveRate []float64
	// NormalizedRate[b] is the per-bin activity level after α
	// normalization — the corrected estimate.
	NormalizedRate []float64
}

// PaperTable1 returns the exact input of Table 1: two slots (day, night),
// two latency bins (low, high), 90/140/26/4 actions and 30/70/80/20 % time
// shares, with "day" as the reference.
func PaperTable1() WorkedExample {
	return WorkedExample{
		Slots:    []string{"Day", "Night"},
		Bins:     []string{"Low", "High"},
		Counts:   [][]float64{{90, 140}, {26, 4}},
		TimeFrac: [][]float64{{0.30, 0.70}, {0.80, 0.20}},
		RefSlot:  0,
	}
}

// Solve runs the normalization.
func (w WorkedExample) Solve() (*WorkedExampleResult, error) {
	s := len(w.Slots)
	b := len(w.Bins)
	if s == 0 || b == 0 || len(w.Counts) != s || len(w.TimeFrac) != s {
		return nil, errors.New("core: malformed worked example")
	}
	for i := 0; i < s; i++ {
		if len(w.Counts[i]) != b || len(w.TimeFrac[i]) != b {
			return nil, errors.New("core: ragged worked example")
		}
	}
	if w.RefSlot < 0 || w.RefSlot >= s {
		return nil, errors.New("core: reference slot out of range")
	}

	// Temporal rates r[s][b] = c/f.
	rate := make([][]float64, s)
	for i := range rate {
		rate[i] = make([]float64, b)
		for j := 0; j < b; j++ {
			if w.TimeFrac[i][j] <= 0 {
				rate[i][j] = math.NaN()
				continue
			}
			rate[i][j] = w.Counts[i][j] / w.TimeFrac[i][j]
		}
	}

	res := &WorkedExampleResult{
		AlphaPerBin:      make([][]float64, s),
		Alpha:            make([]float64, s),
		NormalizedCounts: make([][]float64, s),
		NaiveRate:        make([]float64, b),
		NormalizedRate:   make([]float64, b),
	}
	for i := 0; i < s; i++ {
		res.AlphaPerBin[i] = make([]float64, b)
		var sum float64
		var n int
		for j := 0; j < b; j++ {
			if math.IsNaN(rate[i][j]) || math.IsNaN(rate[w.RefSlot][j]) || rate[w.RefSlot][j] == 0 {
				res.AlphaPerBin[i][j] = math.NaN()
				continue
			}
			res.AlphaPerBin[i][j] = rate[i][j] / rate[w.RefSlot][j]
			sum += res.AlphaPerBin[i][j]
			n++
		}
		if n == 0 {
			return nil, errors.New("core: slot shares no bins with the reference")
		}
		res.Alpha[i] = sum / float64(n)
		res.NormalizedCounts[i] = make([]float64, b)
		for j := 0; j < b; j++ {
			res.NormalizedCounts[i][j] = w.Counts[i][j] / res.Alpha[i]
		}
	}
	// Pooled activity levels per bin.
	for j := 0; j < b; j++ {
		var rawC, normC, timeF float64
		for i := 0; i < s; i++ {
			rawC += w.Counts[i][j]
			normC += res.NormalizedCounts[i][j]
			timeF += w.TimeFrac[i][j]
		}
		if timeF <= 0 {
			res.NaiveRate[j] = math.NaN()
			res.NormalizedRate[j] = math.NaN()
			continue
		}
		res.NaiveRate[j] = rawC / (timeF * 100)       // per paper: % time units
		res.NormalizedRate[j] = normC / (timeF * 100) // actions per unit time
	}
	return res, nil
}
