package core

import (
	"math"
	"testing"
	"testing/quick"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// TestUnbiasedDrawAlwaysFromInput: every unbiased draw must return a
// latency value that exists in the input sample set.
func TestUnbiasedDrawAlwaysFromInput(t *testing.T) {
	src := rng.New(31)
	f := func(n uint8, span uint16) bool {
		k := int(n)%200 + 1
		rs := make([]telemetry.Record, k)
		seen := make(map[float64]bool, k)
		for i := range rs {
			lat := 10 + src.Float64()*2000
			rs[i] = mkRec(timeutil.Millis(src.Intn(int(span)+1)), lat)
			seen[lat] = true
		}
		telemetry.SortByTime(rs)
		s := newUnbiasedSampler(rs)
		for d := 0; d < 20; d++ {
			v := s.draw(0, timeutil.Millis(span)+1, src)
			if !seen[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnbiasedDrawsAPI(t *testing.T) {
	rs := []telemetry.Record{mkRec(0, 100), mkRec(100, 200), mkRec(500, 300)}
	draws, err := UnbiasedDraws(rs, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(draws) != 50 {
		t.Fatalf("%d draws", len(draws))
	}
	var last timeutil.Millis = -1
	for _, d := range draws {
		if d.At < last {
			t.Fatal("draws not sorted by time")
		}
		last = d.At
		if d.At < 0 || d.At > 500 {
			t.Fatalf("draw time %d outside span", d.At)
		}
		if d.LatencyMS != 100 && d.LatencyMS != 200 && d.LatencyMS != 300 {
			t.Fatalf("draw latency %v not from input", d.LatencyMS)
		}
	}
	if _, err := UnbiasedDraws(nil, 10, 1); err == nil {
		t.Fatal("empty records accepted")
	}
	if _, err := UnbiasedDraws(rs, 0, 1); err == nil {
		t.Fatal("zero draws accepted")
	}
	// Determinism.
	again, err := UnbiasedDraws(rs, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range draws {
		if draws[i] != again[i] {
			t.Fatal("draws not deterministic")
		}
	}
}

// TestNearestIsActuallyNearest: for any query time, no sample may be
// strictly closer in time than the one returned.
func TestNearestIsActuallyNearest(t *testing.T) {
	src := rng.New(32)
	f := func(n uint8, q uint16) bool {
		k := int(n)%50 + 1
		rs := make([]telemetry.Record, k)
		for i := range rs {
			// Distinct latencies so we can identify the sample.
			rs[i] = mkRec(timeutil.Millis(src.Intn(1000)), float64(i+1))
		}
		telemetry.SortByTime(rs)
		s := newUnbiasedSampler(rs)
		query := timeutil.Millis(q) % 1200
		got := s.nearest(query, src)
		var gotDist timeutil.Millis = -1
		best := timeutil.Millis(math.MaxInt64)
		for _, r := range rs {
			d := r.Time - query
			if d < 0 {
				d = -d
			}
			if r.LatencyMS == got && (gotDist == -1 || d < gotDist) {
				gotDist = d
			}
			if d < best {
				best = d
			}
		}
		return gotDist == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateScaleInvariance: multiplying every user's activity uniformly
// (by duplicating the record stream with jittered user ids) must not change
// the NLP curve materially — the estimator works on distributions, not
// volumes.
func TestEstimateScaleInvariance(t *testing.T) {
	src := rng.New(33)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			phase := 2 * math.Pi * float64(tm) / float64(8*timeutil.MillisPerHour)
			return 450 * (1 + 0.5*math.Sin(phase))
		}, 0.2,
		func(timeutil.Millis) float64 { return 8 })
	doubled := make([]telemetry.Record, 0, 2*len(records))
	for _, r := range records {
		doubled = append(doubled, r)
		r2 := r
		r2.UserID++
		doubled = append(doubled, r2)
	}
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 450 })
	c1, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.Estimate(doubled)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{300, 450, 600, 700} {
		v1, ok1 := c1.At(probe)
		v2, ok2 := c2.At(probe)
		if !ok1 || !ok2 {
			continue
		}
		if math.Abs(v1-v2) > 0.08 {
			t.Fatalf("NLP at %v changed from %v to %v when volume doubled", probe, v1, v2)
		}
	}
}

// TestNLPNonNegative: the reported NLP can never be negative over valid
// bins (it is a ratio of non-negative masses after smoothing; smoothing can
// only undershoot zero on invalid, interpolated stretches).
func TestNLPNonNegativeOnValidBins(t *testing.T) {
	records := confoundedRecords(34)
	e := testEstimator(t, nil)
	for _, mode := range []func([]telemetry.Record) (*Curve, error){e.Estimate, e.EstimateTimeNormalized} {
		c, err := mode(records)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range c.NLP {
			if c.Valid[i] && v < -1e-9 {
				t.Fatalf("negative NLP %v at valid bin %d", v, i)
			}
		}
	}
}

// TestCurveBiasedFractionsSumToOne: the reported biased/unbiased fractions
// are proper distributions.
func TestCurveFractionsSumToOne(t *testing.T) {
	records := confoundedRecords(35)
	e := testEstimator(t, nil)
	c, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	var b, u float64
	for i := range c.Biased {
		b += c.Biased[i]
		u += c.Unbiased[i]
	}
	if math.Abs(b-1) > 1e-9 || math.Abs(u-1) > 1e-9 {
		t.Fatalf("fractions sum to %v / %v", b, u)
	}
}

// TestSeedChangesOnlyNoise: two different estimator seeds on the same data
// must agree closely (the unbiased draws are Monte Carlo; the signal is
// not).
func TestSeedChangesOnlyNoise(t *testing.T) {
	records := confoundedRecords(36)
	e1 := testEstimator(t, func(o *Options) { o.Seed = 1 })
	e2 := testEstimator(t, func(o *Options) { o.Seed = 2 })
	c1, err := e1.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{300, 400, 500, 600} {
		v1, ok1 := c1.At(probe)
		v2, ok2 := c2.At(probe)
		if ok1 && ok2 && math.Abs(v1-v2) > 0.1 {
			t.Fatalf("seeds disagree at %v: %v vs %v", probe, v1, v2)
		}
	}
}
