package core

import (
	"testing"
	"time"

	"autosens/internal/obs"
	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

func TestEstimateRecordsStageSpans(t *testing.T) {
	src := rng.New(7)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 400 }, 0.3,
		func(timeutil.Millis) float64 { return 3 })

	est := testEstimator(t, nil)
	tr := obs.NewTracer("test")
	est.SetTrace(tr.Root())
	if _, err := est.Estimate(records); err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()

	sp := root.Find("estimate")
	if sp == nil {
		t.Fatal("no estimate span recorded")
	}
	for _, stage := range []string{"build_biased_histogram", "sample_unbiased", "savitzky_golay_smooth"} {
		if sp.Find(stage) == nil {
			t.Fatalf("stage span %q missing", stage)
		}
	}
	if v, ok := sp.Attr("records"); !ok || v.(int) != len(records) {
		t.Fatalf("records attr = %v, %v", v, ok)
	}
	if v, ok := sp.Find("sample_unbiased").Attr("draws"); !ok || v.(int) <= 0 {
		t.Fatalf("draws attr = %v, %v", v, ok)
	}
	// Stage durations must fit inside their parent.
	var sum time.Duration
	for _, c := range sp.Children() {
		sum += c.Duration()
	}
	if sum > sp.Duration() {
		t.Fatalf("children (%v) exceed parent (%v)", sum, sp.Duration())
	}
}

func TestEstimateTimeNormalizedStageSpans(t *testing.T) {
	src := rng.New(9)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 400 }, 0.3,
		func(timeutil.Millis) float64 { return 3 })

	est := testEstimator(t, func(o *Options) { o.MinSlotActions = 10 })
	tr := obs.NewTracer("test")
	est.SetTrace(tr.Root())
	if _, err := est.EstimateTimeNormalized(records); err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()

	sp := root.Find("estimate_time_normalized")
	if sp == nil {
		t.Fatal("no estimate_time_normalized span")
	}
	for _, stage := range []string{"partition_slots", "build_biased_histograms",
		"sample_unbiased", "alpha_reference", "savitzky_golay_smooth", "average_curves"} {
		if sp.Find(stage) == nil {
			t.Fatalf("stage span %q missing", stage)
		}
	}
	// One alpha_reference span per reference slot actually used.
	refs := 0
	for _, c := range sp.Children() {
		if c.Name() == "alpha_reference" {
			refs++
			if _, ok := c.Attr("pooled_slots"); !ok {
				t.Fatal("alpha_reference span lacks pooled_slots attr")
			}
		}
	}
	if refs == 0 || refs > est.Options().ReferenceSlots {
		t.Fatalf("%d alpha_reference spans", refs)
	}
}

func TestEstimateCIBootstrapSpan(t *testing.T) {
	src := rng.New(11)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 400 }, 0.3,
		func(timeutil.Millis) float64 { return 2 })

	est := testEstimator(t, nil)
	tr := obs.NewTracer("test")
	est.SetTrace(tr.Root())
	opts := DefaultCIOptions()
	opts.Resamples = 4
	band, err := est.EstimateCI(records, opts)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()

	ci := root.Find("estimate_ci")
	if ci == nil {
		t.Fatal("no estimate_ci span")
	}
	boot := ci.Find("bootstrap")
	if boot == nil {
		t.Fatal("no bootstrap span")
	}
	if v, ok := boot.Attr("replicates"); !ok || v.(int) != band.Replicates {
		t.Fatalf("replicates attr = %v, want %d", v, band.Replicates)
	}
	// Replicates run untraced: the bootstrap span must not accumulate
	// per-replicate stage children.
	if len(boot.Children()) != 0 {
		t.Fatalf("bootstrap span has %d children", len(boot.Children()))
	}
	// The point estimate is traced under estimate_ci.
	if ci.Find("estimate") == nil {
		t.Fatal("point estimate span missing under estimate_ci")
	}
}

// TestUntracedEstimatorUnchanged pins that tracing is purely additive: the
// same seed with and without a trace produces the identical curve.
func TestUntracedEstimatorUnchanged(t *testing.T) {
	src := rng.New(13)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 400 }, 0.3,
		func(timeutil.Millis) float64 { return 3 })

	plain := testEstimator(t, func(o *Options) { o.MinSlotActions = 10 })
	traced := testEstimator(t, func(o *Options) { o.MinSlotActions = 10 })
	traced.SetTrace(obs.NewTracer("t").Root())

	a, err := plain.EstimateTimeNormalized(records)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traced.EstimateTimeNormalized(records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.NLP {
		if a.NLP[i] != b.NLP[i] || a.Valid[i] != b.Valid[i] {
			t.Fatalf("bin %d diverged: %v vs %v", i, a.NLP[i], b.NLP[i])
		}
	}
}
