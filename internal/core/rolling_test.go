package core

import (
	"math"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

func rollingOpts() RollingOptions {
	return RollingOptions{
		Window:         2 * timeutil.MillisPerDay,
		Step:           timeutil.MillisPerDay,
		Probes:         []float64{800},
		TimeNormalized: false,
		MinRecords:     500,
	}
}

func TestRollingValidation(t *testing.T) {
	if err := DefaultRollingOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*RollingOptions){
		func(o *RollingOptions) { o.Window = 0 },
		func(o *RollingOptions) { o.Step = 0 },
		func(o *RollingOptions) { o.Probes = nil },
		func(o *RollingOptions) { o.MinRecords = -1 },
	}
	for i, mut := range bad {
		o := DefaultRollingOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	e := testEstimator(t, nil)
	if _, err := e.Rolling(nil, rollingOpts()); err == nil {
		t.Fatal("empty records accepted")
	}
}

// driftRecords plants a preference regime change halfway through the
// window: the first half has no latency preference, the second half halves
// the rate whenever latency is high.
func driftRecords(seed uint64, days int) []telemetry.Record {
	src := rng.New(seed)
	horizon := timeutil.Millis(days) * timeutil.MillisPerDay
	half := horizon / 2
	regime := func(tm timeutil.Millis) bool { // true = slow latency period
		return (tm/(2*timeutil.MillisPerHour))%2 == 1
	}
	return genRecords(src, horizon,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return 800
			}
			return 300
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if regime(tm) && tm >= half {
				return 5 // second half: strong aversion to slow periods
			}
			return 10
		})
}

func TestRollingDetectsDrift(t *testing.T) {
	records := driftRecords(61, 8)
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	series, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series.WindowStart) < 4 {
		t.Fatalf("only %d windows", len(series.WindowStart))
	}
	// Early windows: NLP(800) ~ 1. Late windows: ~0.5.
	first := series.NLP[0][0]
	last := series.NLP[len(series.NLP)-1][0]
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Fatalf("NaN endpoints: %v, %v", first, last)
	}
	if first < 0.8 {
		t.Fatalf("early window NLP %v, want ~1 (no preference yet)", first)
	}
	if last > 0.7 {
		t.Fatalf("late window NLP %v, want ~0.5 (preference active)", last)
	}
	if series.MaxDrift(0) < 0.15 {
		t.Fatalf("MaxDrift %v did not flag the regime change", series.MaxDrift(0))
	}
}

func TestRollingStableSeries(t *testing.T) {
	// Without a regime change consecutive windows agree.
	src := rng.New(62)
	records := genRecords(src, 6*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if (tm/(2*timeutil.MillisPerHour))%2 == 1 {
				return 800
			}
			return 300
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if (tm/(2*timeutil.MillisPerHour))%2 == 1 {
				return 5
			}
			return 10
		})
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	series, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if d := series.MaxDrift(0); d > 0.15 {
		t.Fatalf("stable stream drifted by %v", d)
	}
}

func TestRollingSkipsThinWindows(t *testing.T) {
	// A burst of records followed by silence: later windows are skipped.
	var records []telemetry.Record
	src := rng.New(63)
	for i := 0; i < 3000; i++ {
		records = append(records, mkRec(timeutil.Millis(src.Intn(int(timeutil.MillisPerDay))), 300+src.Normal(0, 30)))
	}
	// One straggler far away so the sweep continues past the burst.
	records = append(records, mkRec(6*timeutil.MillisPerDay, 300))
	e := testEstimator(t, nil)
	series, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if series.Skipped == 0 {
		t.Fatal("no thin window skipped")
	}
	if len(series.WindowStart) == 0 {
		t.Fatal("burst window missing")
	}
}
