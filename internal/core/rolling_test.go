package core

import (
	"math"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

func rollingOpts() RollingOptions {
	return RollingOptions{
		Window:         2 * timeutil.MillisPerDay,
		Step:           timeutil.MillisPerDay,
		Probes:         []float64{800},
		TimeNormalized: false,
		MinRecords:     500,
	}
}

func TestRollingValidation(t *testing.T) {
	if err := DefaultRollingOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*RollingOptions){
		func(o *RollingOptions) { o.Window = 0 },
		func(o *RollingOptions) { o.Step = 0 },
		func(o *RollingOptions) { o.Probes = nil },
		func(o *RollingOptions) { o.MinRecords = -1 },
	}
	for i, mut := range bad {
		o := DefaultRollingOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	e := testEstimator(t, nil)
	if _, err := e.Rolling(nil, rollingOpts()); err == nil {
		t.Fatal("empty records accepted")
	}
}

// driftRecords plants a preference regime change halfway through the
// window: the first half has no latency preference, the second half halves
// the rate whenever latency is high.
func driftRecords(seed uint64, days int) []telemetry.Record {
	src := rng.New(seed)
	horizon := timeutil.Millis(days) * timeutil.MillisPerDay
	half := horizon / 2
	regime := func(tm timeutil.Millis) bool { // true = slow latency period
		return (tm/(2*timeutil.MillisPerHour))%2 == 1
	}
	return genRecords(src, horizon,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return 800
			}
			return 300
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if regime(tm) && tm >= half {
				return 5 // second half: strong aversion to slow periods
			}
			return 10
		})
}

func TestRollingDetectsDrift(t *testing.T) {
	records := driftRecords(61, 8)
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	series, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series.WindowStart) < 4 {
		t.Fatalf("only %d windows", len(series.WindowStart))
	}
	// Early windows: NLP(800) ~ 1. Late windows: ~0.5.
	first := series.NLP[0][0]
	last := series.NLP[len(series.NLP)-1][0]
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Fatalf("NaN endpoints: %v, %v", first, last)
	}
	if first < 0.8 {
		t.Fatalf("early window NLP %v, want ~1 (no preference yet)", first)
	}
	if last > 0.7 {
		t.Fatalf("late window NLP %v, want ~0.5 (preference active)", last)
	}
	if series.MaxDrift(0) < 0.15 {
		t.Fatalf("MaxDrift %v did not flag the regime change", series.MaxDrift(0))
	}
}

func TestRollingStableSeries(t *testing.T) {
	// Without a regime change consecutive windows agree.
	src := rng.New(62)
	records := genRecords(src, 6*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if (tm/(2*timeutil.MillisPerHour))%2 == 1 {
				return 800
			}
			return 300
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if (tm/(2*timeutil.MillisPerHour))%2 == 1 {
				return 5
			}
			return 10
		})
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	series, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if d := series.MaxDrift(0); d > 0.15 {
		t.Fatalf("stable stream drifted by %v", d)
	}
}

// TestRollingColumnsMatchesRolling pins the incremental-friendly entry
// point to the record-slice one: same times and latencies, bit-identical
// series — including ProbeN, which the watcher's drift thresholds consume.
func TestRollingColumnsMatchesRolling(t *testing.T) {
	records := driftRecords(64, 6)
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	want, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	sorted := usable(records)
	telemetry.SortByTime(sorted)
	times, lats := columnsOf(sorted)
	got, err := e.RollingColumns(times, lats, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.WindowStart) != len(want.WindowStart) || got.Skipped != want.Skipped {
		t.Fatalf("shape mismatch: %d/%d windows, %d/%d skipped",
			len(got.WindowStart), len(want.WindowStart), got.Skipped, want.Skipped)
	}
	for i := range want.WindowStart {
		if got.WindowStart[i] != want.WindowStart[i] || got.Records[i] != want.Records[i] {
			t.Fatalf("window %d differs: start %d/%d records %d/%d",
				i, got.WindowStart[i], want.WindowStart[i], got.Records[i], want.Records[i])
		}
		for j := range want.Probes {
			gv, wv := got.NLP[i][j], want.NLP[i][j]
			if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
				t.Fatalf("window %d probe %d NLP %v != %v", i, j, gv, wv)
			}
			if got.ProbeN[i][j] != want.ProbeN[i][j] {
				t.Fatalf("window %d probe %d ProbeN %v != %v",
					i, j, got.ProbeN[i][j], want.ProbeN[i][j])
			}
		}
	}
	// Unsorted columns must be rejected, not silently mis-windowed.
	if len(times) > 1 {
		times[0], times[1] = times[1], times[0]
		if _, err := e.RollingColumns(times, lats, rollingOpts()); err == nil {
			t.Fatal("unsorted columns accepted")
		}
	}
}

// TestRollingProbeNTracksBinThinness: the effective sample size behind a
// rarely-hit probe bin must be far below the window's record count, and a
// commonly-hit bin's must be larger — Records is NOT a CI denominator.
func TestRollingProbeNTracksBinThinness(t *testing.T) {
	records := driftRecords(65, 6)
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	opts := rollingOpts()
	opts.Probes = []float64{300, 800}
	series, err := e.Rolling(records, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range series.WindowStart {
		nCommon, nRare := series.ProbeN[i][0], series.ProbeN[i][1]
		if nRare <= 0 || nCommon <= 0 {
			continue // probe bin empty in this window
		}
		if nRare >= float64(series.Records[i]) {
			t.Fatalf("window %d: rare-probe ProbeN %v not below Records %d",
				i, nRare, series.Records[i])
		}
		if nCommon <= nRare {
			t.Fatalf("window %d: common probe ProbeN %v <= rare probe %v",
				i, nCommon, nRare)
		}
	}
}

// TestRollingSingleWindow: a stream exactly one window long yields exactly
// one row, anchored at the first record.
func TestRollingSingleWindow(t *testing.T) {
	src := rng.New(66)
	opts := rollingOpts()
	// Slightly over one window long: the stream's actual span (first to
	// last record) must cover Window, but stay short of Window+Step.
	records := genRecords(src, opts.Window+2*timeutil.MillisPerHour,
		func(tm timeutil.Millis) float64 { return 400 },
		0.25, func(tm timeutil.Millis) float64 { return 2 })
	e := testEstimator(t, nil)
	series, err := e.Rolling(records, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.WindowStart) != 1 {
		t.Fatalf("%d windows, want 1", len(series.WindowStart))
	}
	sorted := usable(records)
	telemetry.SortByTime(sorted)
	if series.WindowStart[0] != sorted[0].Time {
		t.Fatalf("window anchored at %d, want first record time %d",
			series.WindowStart[0], sorted[0].Time)
	}
}

// TestRollingStepLargerThanWindow: gappy (non-overlapping, spaced) windows
// are legal; each record lands in at most one.
func TestRollingStepLargerThanWindow(t *testing.T) {
	src := rng.New(67)
	opts := rollingOpts()
	opts.Window = timeutil.MillisPerDay
	opts.Step = 2 * timeutil.MillisPerDay
	records := genRecords(src, 6*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 { return 400 },
		0.25, func(tm timeutil.Millis) float64 { return 2 })
	e := testEstimator(t, nil)
	series, err := e.Rolling(records, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.WindowStart)+series.Skipped != 3 {
		t.Fatalf("%d windows + %d skipped, want 3 total",
			len(series.WindowStart), series.Skipped)
	}
	total := 0
	for _, n := range series.Records {
		total += n
	}
	if total >= len(records) {
		t.Fatalf("windows consumed %d of %d records; gaps missing", total, len(records))
	}
}

// TestRollingAllWindowsThin: when MinRecords filters every window the call
// errors rather than returning an empty series.
func TestRollingAllWindowsThin(t *testing.T) {
	var records []telemetry.Record
	for i := 0; i < 200; i++ {
		records = append(records,
			mkRec(timeutil.Millis(i)*timeutil.MillisPerHour/4, 300+float64(i%7)))
	}
	e := testEstimator(t, nil)
	if _, err := e.Rolling(records, rollingOpts()); err == nil {
		t.Fatal("all-thin series accepted")
	}
}

// TestRollingBoundaryRegimeChange: a preference flip on an exact window
// boundary keeps both adjoining windows pure — the before window reads
// pre-change, the after window post-change, with the step between them.
func TestRollingBoundaryRegimeChange(t *testing.T) {
	src := rng.New(68)
	opts := rollingOpts() // 2d windows, 1d step
	boundary := 4 * timeutil.MillisPerDay
	slow := func(tm timeutil.Millis) bool {
		return (tm/(2*timeutil.MillisPerHour))%2 == 1
	}
	records := genRecords(src, 8*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if slow(tm) {
				return 800
			}
			return 300
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if slow(tm) && tm >= boundary {
				return 4
			}
			return 10
		})
	e := testEstimator(t, func(o *Options) { o.ReferenceMS = 300 })
	series, err := e.Rolling(records, opts)
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64 = math.NaN(), math.NaN()
	for i, start := range series.WindowStart {
		if start+opts.Window <= boundary {
			before = series.NLP[i][0] // last fully pre-change window
		}
		if start >= boundary && math.IsNaN(after) {
			after = series.NLP[i][0] // first fully post-change window
		}
	}
	if math.IsNaN(before) || math.IsNaN(after) {
		t.Fatalf("boundary windows missing: before=%v after=%v", before, after)
	}
	if before < 0.85 {
		t.Fatalf("pre-boundary window NLP %v contaminated by the change", before)
	}
	if after > 0.65 {
		t.Fatalf("post-boundary window NLP %v does not reflect the change", after)
	}
}

func TestRollingSkipsThinWindows(t *testing.T) {
	// A burst of records followed by silence: later windows are skipped.
	var records []telemetry.Record
	src := rng.New(63)
	for i := 0; i < 3000; i++ {
		records = append(records, mkRec(timeutil.Millis(src.Intn(int(timeutil.MillisPerDay))), 300+src.Normal(0, 30)))
	}
	// One straggler far away so the sweep continues past the burst.
	records = append(records, mkRec(6*timeutil.MillisPerDay, 300))
	e := testEstimator(t, nil)
	series, err := e.Rolling(records, rollingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if series.Skipped == 0 {
		t.Fatal("no thin window skipped")
	}
	if len(series.WindowStart) == 0 {
		t.Fatal("burst window missing")
	}
}
