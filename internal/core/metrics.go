package core

import (
	"sync/atomic"
	"time"

	"autosens/internal/obs"
)

// coreMetrics are the estimator's operational metrics. They are process
// global (estimators are cheap, short-lived values; a per-estimator
// registry would fragment the numbers) and disabled until EnableMetrics
// installs a registry, so library users who never call it pay one atomic
// pointer load per estimate.
type coreMetrics struct {
	estimates    *obs.Counter
	estimateDur  *obs.Histogram
	replicates   *obs.Counter
	replicateErr *obs.Counter
	replicateDur *obs.Histogram
	bootstrapDur *obs.Histogram
	workers      *obs.Gauge
}

var metricsPtr atomic.Pointer[coreMetrics]

// EnableMetrics registers the estimator's autosens_core_* metrics on reg
// and starts recording into them. Subsequent calls switch recording to the
// new registry.
func EnableMetrics(reg *obs.Registry) {
	m := &coreMetrics{
		estimates: reg.Counter("autosens_core_estimates_total",
			"NLP curve estimations started (all estimator levels)"),
		estimateDur: reg.Histogram("autosens_core_estimate_duration_seconds",
			"wall time of one curve estimation", obs.DefLatencyBuckets()),
		replicates: reg.Counter("autosens_core_bootstrap_replicates_total",
			"bootstrap replicates estimated"),
		replicateErr: reg.Counter("autosens_core_bootstrap_replicate_failures_total",
			"bootstrap replicates skipped as degenerate"),
		replicateDur: reg.Histogram("autosens_core_bootstrap_replicate_duration_seconds",
			"wall time of one bootstrap replicate", obs.DefLatencyBuckets()),
		bootstrapDur: reg.Histogram("autosens_core_bootstrap_duration_seconds",
			"wall time of one full bootstrap (all replicates)", obs.DefLatencyBuckets()),
		workers: reg.Gauge("autosens_core_bootstrap_workers",
			"worker count used by the most recent bootstrap"),
	}
	metricsPtr.Store(m)
}

// getMetrics returns the active metrics, or nil when disabled.
func getMetrics() *coreMetrics { return metricsPtr.Load() }

// observeEstimate records one estimation start/duration pair.
func observeEstimate(start time.Time) {
	if m := getMetrics(); m != nil {
		m.estimates.Inc()
		m.estimateDur.ObserveSince(start)
	}
}
