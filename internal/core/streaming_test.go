package core

import (
	"math"
	"testing"

	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

func TestStreamingValidation(t *testing.T) {
	e := testEstimator(t, nil)
	if _, err := NewStreaming(nil, 100); err == nil {
		t.Fatal("nil estimator accepted")
	}
	if _, err := NewStreaming(e, 1); err == nil {
		t.Fatal("tiny reservoir accepted")
	}
	s, err := NewStreaming(e, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(telemetry.Record{LatencyMS: -1}); err == nil {
		t.Fatal("invalid record accepted")
	}
	if _, err := s.Finalize(); err == nil {
		t.Fatal("finalize of empty stream succeeded")
	}
}

func TestStreamingIgnoresFailedRecords(t *testing.T) {
	e := testEstimator(t, nil)
	s, err := NewStreaming(e, 100)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRec(10, 100)
	rec.Failed = true
	if err := s.Add(rec); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Fatal("failed record counted")
	}
}

func TestStreamingMatchesBatchEstimate(t *testing.T) {
	records := confoundedRecords(41)
	e := testEstimator(t, nil)

	batch, err := e.EstimateTimeNormalized(records)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewStreaming(e, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != len(records) {
		t.Fatalf("streamed %d of %d", s.Count(), len(records))
	}
	stream, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	for _, probe := range []float64{300, 400, 500, 650} {
		bv, bok := batch.At(probe)
		sv, sok := stream.At(probe)
		if !bok || !sok {
			continue
		}
		if math.Abs(bv-sv) > 0.12 {
			t.Fatalf("batch %v vs stream %v at %v ms", bv, sv, probe)
		}
	}
}

func TestStreamingPlainMatchesBatchPlain(t *testing.T) {
	records := confoundedRecords(42)
	e := testEstimator(t, nil)
	batch, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreaming(e, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := s.FinalizePlain()
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{300, 450, 600} {
		bv, bok := batch.At(probe)
		sv, sok := stream.At(probe)
		if !bok || !sok {
			continue
		}
		if math.Abs(bv-sv) > 0.15 {
			t.Fatalf("plain: batch %v vs stream %v at %v ms", bv, sv, probe)
		}
	}
}

func TestStreamingOrderIndependent(t *testing.T) {
	records := confoundedRecords(43)
	e := testEstimator(t, nil)

	run := func(rs []telemetry.Record) *Curve {
		s, err := NewStreaming(e, 300)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if err := s.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		c, err := s.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	forward := run(records)
	reversed := make([]telemetry.Record, len(records))
	for i, r := range records {
		reversed[len(records)-1-i] = r
	}
	backward := run(reversed)
	// The reservoir contents differ with insertion order, so allow Monte
	// Carlo slack, but the curves must agree.
	for _, probe := range []float64{300, 450, 600} {
		fv, fok := forward.At(probe)
		bv, bok := backward.At(probe)
		if !fok || !bok {
			continue
		}
		if math.Abs(fv-bv) > 0.12 {
			t.Fatalf("order dependence at %v ms: %v vs %v", probe, fv, bv)
		}
	}
}

func TestStreamingReusableAfterFinalize(t *testing.T) {
	records := confoundedRecords(44)
	e := testEstimator(t, nil)
	s, err := NewStreaming(e, 200)
	if err != nil {
		t.Fatal(err)
	}
	half := len(records) / 2
	for _, r := range records[:half] {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, r := range records[half:] {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.BiasedN != len(records) {
		t.Fatalf("BiasedN = %d, want %d", c.BiasedN, len(records))
	}
}

func TestStreamingSlotAccounting(t *testing.T) {
	e := testEstimator(t, nil)
	s, err := NewStreaming(e, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Two records in hour 0, one in hour 5.
	s.Add(mkRec(10, 100))
	s.Add(mkRec(20, 100))
	s.Add(mkRec(5*timeutil.MillisPerHour+1, 100))
	if s.Slots() != 2 {
		t.Fatalf("Slots = %d", s.Slots())
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func BenchmarkStreamingAdd(b *testing.B) {
	e, err := NewEstimator(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewStreaming(e, 500)
	if err != nil {
		b.Fatal(err)
	}
	rec := mkRec(0, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Time = timeutil.Millis(i % int(24*timeutil.MillisPerHour))
		rec.LatencyMS = 200 + float64(i%700)
		if err := s.Add(rec); err != nil {
			b.Fatal(err)
		}
	}
}
