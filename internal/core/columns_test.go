package core

import (
	"bytes"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/timeutil"
)

// curveBytes canonicalizes a curve for exact comparison (NaN travels as
// null, so equal bytes ⇒ bit-equal float columns).
func curveBytes(t *testing.T, c *Curve) []byte {
	t.Helper()
	b, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCheckColumns(t *testing.T) {
	if err := checkColumns([]timeutil.Millis{1, 2}, []float64{1}); err != errColumnLengths {
		t.Fatalf("length mismatch: %v", err)
	}
	if err := checkColumns(nil, nil); err != errEmptyRecords {
		t.Fatalf("empty: %v", err)
	}
	if err := checkColumns([]timeutil.Millis{2, 1}, []float64{1, 2}); err != errColumnsUnsorted {
		t.Fatalf("unsorted: %v", err)
	}
	if err := checkColumns([]timeutil.Millis{1, 1, 2}, []float64{1, 2, 3}); err != nil {
		t.Fatalf("valid columns rejected: %v", err)
	}
}

// Column entry points must be bit-identical to their record-based
// counterparts — the live engine's byte-identity guarantee rests on this.
func TestEstimateColumnsMatchesEstimate(t *testing.T) {
	src := rng.New(20)
	records := genRecords(src, 3*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 { return 300 + 200*float64((tm/timeutil.MillisPerHour)%5) },
		0.3,
		func(timeutil.Millis) float64 { return 8 })
	e := testEstimator(t, nil)

	want, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	times, lats := columnsOf(records)

	got, err := e.EstimateColumns(times, lats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
		t.Fatal("EstimateColumns differs from Estimate")
	}

	// Scratch reuse must not change results across repeated estimations.
	sc := &Scratch{}
	for i := 0; i < 3; i++ {
		got, err = e.EstimateColumns(times, lats, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
			t.Fatalf("EstimateColumns with reused scratch differs on pass %d", i)
		}
	}
}

// An incrementally maintained biased histogram (appends in arrival order,
// not time order) must produce the identical curve via EstimateFromParts:
// weight-1.0 adds are exact integer arithmetic in float64, so the counts
// are order-independent.
func TestEstimateFromPartsIncrementalHistogram(t *testing.T) {
	src := rng.New(21)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 400 }, 0.4,
		func(timeutil.Millis) float64 { return 10 })
	e := testEstimator(t, nil)
	times, lats := columnsOf(records)

	want, err := e.EstimateColumns(times, lats, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Build B by appending latencies in a scrambled order, as a live shard
	// would (ack order, not time order).
	b := e.newHist()
	perm := src.Perm(len(lats))
	for _, i := range perm {
		b.Add(lats[i])
	}
	got, err := e.EstimateFromParts(b, times, lats, &Scratch{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
		t.Fatal("EstimateFromParts with incremental histogram differs")
	}
}

func TestEstimateTimeNormalizedColumnsMatches(t *testing.T) {
	src := rng.New(22)
	records := genRecords(src, 3*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 { return 250 + 150*float64((tm/(6*timeutil.MillisPerHour))%3) },
		0.3,
		func(tm timeutil.Millis) float64 { return 6 + float64((tm/timeutil.MillisPerHour)%4) })
	e := testEstimator(t, nil)

	want, err := e.EstimateTimeNormalized(records)
	if err != nil {
		t.Fatal(err)
	}
	times, lats := columnsOf(records)
	got, err := e.EstimateTimeNormalizedColumns(times, lats)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, want), curveBytes(t, got)) {
		t.Fatal("EstimateTimeNormalizedColumns differs from EstimateTimeNormalized")
	}
}

func TestEstimateCIColumnsMatches(t *testing.T) {
	src := rng.New(23)
	records := genRecords(src, 3*timeutil.MillisPerDay,
		func(timeutil.Millis) float64 { return 350 }, 0.35,
		func(timeutil.Millis) float64 { return 8 })
	e := testEstimator(t, nil)
	opts := DefaultCIOptions()
	opts.Resamples = 8

	want, err := e.EstimateCI(records, opts)
	if err != nil {
		t.Fatal(err)
	}
	times, lats := columnsOf(records)
	got, err := e.EstimateCIColumns(times, lats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curveBytes(t, want.Curve), curveBytes(t, got.Curve)) {
		t.Fatal("EstimateCIColumns point estimate differs")
	}
	wb, err := want.MarshalBoundsJSON()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.MarshalBoundsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatal("EstimateCIColumns bounds differ")
	}
}
