package core

import (
	"math"
	"testing"

	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

func TestPaperTable1ExactValues(t *testing.T) {
	res, err := PaperTable1().Solve()
	if err != nil {
		t.Fatal(err)
	}
	// α per bin: (26/0.8)/(90/0.3) = 0.10833…, (4/0.2)/(140/0.7) = 0.1.
	if math.Abs(res.AlphaPerBin[1][0]-0.10833333333333334) > 1e-12 {
		t.Fatalf("alpha night/low = %v", res.AlphaPerBin[1][0])
	}
	if math.Abs(res.AlphaPerBin[1][1]-0.1) > 1e-12 {
		t.Fatalf("alpha night/high = %v", res.AlphaPerBin[1][1])
	}
	// α_night = 0.104166…; the paper rounds to 0.104.
	if math.Abs(res.Alpha[1]-0.10416666666666667) > 1e-12 {
		t.Fatalf("alpha night = %v", res.Alpha[1])
	}
	if res.Alpha[0] != 1 {
		t.Fatalf("alpha day = %v, want 1", res.Alpha[0])
	}
	// Normalized night counts ≈ 250 and 38 (paper's rounding).
	if math.Abs(res.NormalizedCounts[1][0]-249.6) > 0.5 {
		t.Fatalf("normalized low count = %v, want ~250", res.NormalizedCounts[1][0])
	}
	if math.Abs(res.NormalizedCounts[1][1]-38.4) > 0.5 {
		t.Fatalf("normalized high count = %v, want ~38", res.NormalizedCounts[1][1])
	}
	// Naive pooled rates: high > low (the paradox).
	if !(res.NaiveRate[1] > res.NaiveRate[0]) {
		t.Fatalf("naive rates %v should prefer high latency", res.NaiveRate)
	}
	if math.Abs(res.NaiveRate[1]-1.6) > 1e-9 {
		t.Fatalf("naive high rate = %v, want 1.6", res.NaiveRate[1])
	}
	// Normalized rates: low ≈ 3.09 > high ≈ 1.98 (paradox resolved).
	if math.Abs(res.NormalizedRate[0]-3.0872727272727276) > 1e-9 {
		t.Fatalf("normalized low rate = %v, want ~3.09", res.NormalizedRate[0])
	}
	if math.Abs(res.NormalizedRate[1]-1.9822222222222223) > 1e-9 {
		t.Fatalf("normalized high rate = %v, want ~1.98", res.NormalizedRate[1])
	}
	if !(res.NormalizedRate[0] > res.NormalizedRate[1]) {
		t.Fatal("normalization did not restore the low-latency preference")
	}
}

func TestWorkedExampleValidation(t *testing.T) {
	bad := WorkedExample{Slots: []string{"a"}, Bins: []string{"x"}, Counts: [][]float64{{1, 2}}, TimeFrac: [][]float64{{1}}}
	if _, err := bad.Solve(); err == nil {
		t.Fatal("ragged example accepted")
	}
	bad2 := PaperTable1()
	bad2.RefSlot = 9
	if _, err := bad2.Solve(); err == nil {
		t.Fatal("out-of-range reference accepted")
	}
	empty := WorkedExample{}
	if _, err := empty.Solve(); err == nil {
		t.Fatal("empty example accepted")
	}
}

func TestWorkedExampleZeroTimeFraction(t *testing.T) {
	w := WorkedExample{
		Slots:    []string{"a", "b"},
		Bins:     []string{"x", "y"},
		Counts:   [][]float64{{10, 10}, {5, 5}},
		TimeFrac: [][]float64{{0, 1}, {0.5, 0.5}},
		RefSlot:  0,
	}
	res, err := w.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.AlphaPerBin[1][0]) {
		t.Fatal("zero time fraction should yield NaN per-bin alpha")
	}
	if math.IsNaN(res.Alpha[1]) {
		t.Fatal("alpha mean should skip NaN bins")
	}
}

// periodRecords builds a stream with a planted diurnal activity factor and
// mild confounded latency, for AlphaByPeriod.
func periodRecords(seed uint64, tz timeutil.Millis) []telemetry.Record {
	src := rng.New(seed)
	var out []telemetry.Record
	rate := func(tm timeutil.Millis) float64 {
		switch timeutil.PeriodOf(tm, tz) {
		case timeutil.Period8am2pm:
			return 16
		case timeutil.Period2pm8pm:
			return 13
		case timeutil.Period8pm2am:
			return 6
		default:
			return 2.5
		}
	}
	lat := func(tm timeutil.Millis) float64 {
		h := timeutil.HourOfDay(tm, tz)
		if h >= 8 && h < 20 {
			return 430
		}
		return 330
	}
	for m := timeutil.Millis(0); m < 8*timeutil.MillisPerDay; m += timeutil.MillisPerMinute {
		n := src.Poisson(rate(m))
		for i := 0; i < n; i++ {
			tt := m + timeutil.Millis(src.Intn(int(timeutil.MillisPerMinute)))
			out = append(out, telemetry.Record{
				Time: tt, Action: telemetry.SelectMail,
				LatencyMS: lat(tt) * src.LogNormal(0, 0.4),
				UserID:    1, UserType: telemetry.Business, TZOffset: tz,
			})
		}
	}
	telemetry.SortByTime(out)
	return out
}

func TestAlphaByPeriodOrdering(t *testing.T) {
	records := periodRecords(20, -6*timeutil.MillisPerHour)
	e := testEstimator(t, nil)
	prof, err := e.AlphaByPeriod(records, timeutil.Period8am2pm)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Mean[timeutil.Period8am2pm] != 1 {
		t.Fatalf("reference period alpha = %v", prof.Mean[timeutil.Period8am2pm])
	}
	// Planted ordering: 8am-2pm (1.0) > 2pm-8pm (~0.8) > 8pm-2am (~0.38)
	// > 2am-8am (~0.16).
	m := prof.Mean
	if !(m[timeutil.Period2pm8pm] < 1 && m[timeutil.Period8pm2am] < m[timeutil.Period2pm8pm] && m[timeutil.Period2am8am] < m[timeutil.Period8pm2am]) {
		t.Fatalf("alpha ordering wrong: %v", m)
	}
	if math.Abs(m[timeutil.Period2pm8pm]-13.0/16) > 0.15 {
		t.Fatalf("2pm-8pm alpha = %v, want ~%v", m[timeutil.Period2pm8pm], 13.0/16)
	}
	if math.Abs(m[timeutil.Period2am8am]-2.5/16) > 0.08 {
		t.Fatalf("2am-8am alpha = %v, want ~%v", m[timeutil.Period2am8am], 2.5/16)
	}
}

func TestAlphaByPeriodFlatAcrossBins(t *testing.T) {
	// The activity factor is planted independent of latency, so the
	// per-bin α estimates should scatter around their mean without trend
	// — the property Figure 8 checks.
	records := periodRecords(21, -5*timeutil.MillisPerHour)
	// Restrict the check to well-supported bins: sparsely populated tail
	// bins have arbitrarily noisy per-bin α.
	e := testEstimator(t, func(o *Options) { o.MinAlphaBinCount = 30 })
	prof, err := e.AlphaByPeriod(records, timeutil.Period8am2pm)
	if err != nil {
		t.Fatal(err)
	}
	p := timeutil.Period2pm8pm
	mean := prof.Mean[p]
	var maxDev float64
	var used int
	for _, v := range prof.PerBin[p] {
		if math.IsNaN(v) {
			continue
		}
		used++
		if d := math.Abs(v-mean) / mean; d > maxDev {
			maxDev = d
		}
	}
	if used < 3 {
		t.Fatalf("only %d usable alpha bins", used)
	}
	if maxDev > 0.6 {
		t.Fatalf("alpha varies %.0f%% across bins; expected roughly flat", maxDev*100)
	}
}

func TestAlphaByPeriodEmpty(t *testing.T) {
	e := testEstimator(t, nil)
	if _, err := e.AlphaByPeriod(nil, timeutil.Period8am2pm); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPeriodIntervals(t *testing.T) {
	tz := -5 * timeutil.MillisPerHour
	day := timeutil.MillisPerDay
	ivs := periodIntervals(timeutil.Period8am2pm, tz, 0, 2*day)
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	var total timeutil.Millis
	for _, iv := range ivs {
		if iv.lo >= iv.hi {
			t.Fatalf("degenerate interval %+v", iv)
		}
		if iv.lo < 0 || iv.hi > 2*day {
			t.Fatalf("interval %+v outside window", iv)
		}
		// Every contained instant must map back to the period.
		for _, probe := range []timeutil.Millis{iv.lo, iv.hi - 1, (iv.lo + iv.hi) / 2} {
			if p := timeutil.PeriodOf(probe, tz); p != timeutil.Period8am2pm {
				t.Fatalf("instant %d classified as %v", probe, p)
			}
		}
		total += iv.hi - iv.lo
	}
	// Two days contain two 6-hour blocks of the period.
	if total != 12*timeutil.MillisPerHour {
		t.Fatalf("total covered = %v, want 12h", total)
	}
}

func TestPeriodIntervalsCoverWholeWindow(t *testing.T) {
	// Across all four periods the intervals must tile the window.
	tz := -8 * timeutil.MillisPerHour
	windowHi := 3 * timeutil.MillisPerDay
	var total timeutil.Millis
	for p := 0; p < timeutil.NumPeriods; p++ {
		for _, iv := range periodIntervals(timeutil.Period(p), tz, 0, windowHi) {
			total += iv.hi - iv.lo
		}
	}
	if total != windowHi {
		t.Fatalf("periods cover %v of %v", total, windowHi)
	}
}

func TestIntervalSamplerUniform(t *testing.T) {
	ivs := []interval{{0, 100}, {1000, 1300}}
	s := newIntervalSampler(ivs)
	src := rng.New(22)
	var first int
	const n = 40000
	for i := 0; i < n; i++ {
		tm := s.draw(src)
		in := false
		for _, iv := range ivs {
			if tm >= iv.lo && tm < iv.hi {
				in = true
			}
		}
		if !in {
			t.Fatalf("draw %d outside intervals", tm)
		}
		if tm < 100 {
			first++
		}
	}
	frac := float64(first) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("first interval frequency %v, want 0.25", frac)
	}
}

func TestLocalityDiagnostic(t *testing.T) {
	// A slowly drifting latency level with modest per-sample jitter: the
	// kind of series the paper's Figure 1 was computed on.
	src := rng.New(23)
	records := genRecords(src, 2*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			phase := 2 * math.Pi * float64(tm) / float64(6*timeutil.MillisPerHour)
			return 400 * (1 + 0.6*math.Sin(phase))
		}, 0.15,
		func(timeutil.Millis) float64 { return 10 })
	e := testEstimator(t, nil)
	rep, err := e.Locality(records)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.Sorted < rep.Actual && rep.Actual < rep.Shuffled) {
		t.Fatalf("locality ordering wrong: %+v", rep)
	}
	if rep.Actual > 0.9 {
		t.Fatalf("actual ratio %v shows no locality", rep.Actual)
	}
}

func TestActivityLatencySeries(t *testing.T) {
	records := confoundedRecords(24)
	ts, err := ActivityLatencySeries(records, timeutil.MillisPerHour)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.WindowStart) == 0 || len(ts.WindowStart) != len(ts.Count) || len(ts.Count) != len(ts.MeanLatency) {
		t.Fatalf("series shape wrong: %d/%d/%d", len(ts.WindowStart), len(ts.MeanLatency), len(ts.Count))
	}
	lat, cnt := ts.Normalized()
	for i := range lat {
		if lat[i] < 0 || lat[i] > 1 || cnt[i] < 0 || cnt[i] > 1 {
			t.Fatalf("normalized values out of range at %d", i)
		}
	}
	if _, err := ActivityLatencySeries(records, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestDensityLatencyCorrelationSign(t *testing.T) {
	// In the confounded stream, windows with high latency are the busy
	// ones, so the paper's density diagnostic is positive here; with a
	// preference-driven stream (regime alternation uncorrelated with
	// time) it must be negative.
	src := rng.New(25)
	regime := func(tm timeutil.Millis) bool { return (tm/(2*timeutil.MillisPerHour))%2 == 1 }
	pref := genRecords(src, 4*timeutil.MillisPerDay,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return 900
			}
			return 250
		}, 0.25,
		func(tm timeutil.Millis) float64 {
			if regime(tm) {
				return 5
			}
			return 15
		})
	r, err := DensityLatencyCorrelation(pref, timeutil.MillisPerMinute)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0 {
		t.Fatalf("preference stream density correlation %v, want negative", r)
	}
}
