package core

import (
	"math"
	"slices"

	"autosens/internal/rng"
)

// drawCount is the unbiased draw schedule: ceil(n · UnbiasedPerSample).
func drawCount(n int, perSample float64) int {
	return int(math.Ceil(float64(n) * perSample))
}

// UnbiasedPlan retains the unbiased draw-key schedule across estimations so
// a re-estimation after a small data fold regenerates only the keys the
// grown draw count requires — usually a handful — instead of re-drawing and
// re-sorting the full O(draws) schedule every epoch.
//
// Byte-identity with the batch path rests on three facts about
// fillUnbiasedSweep:
//
//  1. The key stream is a pure function of (seed, span): keys[i] is the
//     i-th rejection-sampled Uint64n(span) from rng.New(seed), so when the
//     observation span is unchanged and the draw count grows from n to
//     n+k, the batch path's first n keys equal the previous run's keys
//     verbatim. The plan snapshots the generator state after the n-th key
//     (rng.Source is a value type) and continues the very same stream for
//     the k new keys.
//  2. auxSeed is the stream value immediately after the last key, so it
//     moves every time the draw count does. The plan re-derives it from a
//     copy of the post-keys state, never advancing the retained state.
//  3. The sweep's per-draw tie-break randomness is Mix64(auxSeed + rank)
//     with rank taken in sorted-key order, and equal keys are
//     indistinguishable (same instant, same candidate run), so ANY correct
//     sort of the key multiset — including merging k newly sorted keys
//     into the retained sorted prefix — yields an identical histogram.
//
// If the seed, the span, or (shrinking) the draw count invalidates the
// retained schedule, the plan regenerates from scratch into its retained
// buffers, replacing the comparison sort with an LSD radix sort: draw keys
// are uniform uint64 offsets, the distribution counting sort is O(8·n), and
// passes whose byte is constant across the slice are skipped (spans well
// under 2^40 leave the top bytes all zero).
//
// The zero value is ready to use. A plan is single-goroutine state; callers
// pin it behind the same lock as the Scratch it accompanies.
type UnbiasedPlan struct {
	seed  uint64
	span  uint64
	draws int
	valid bool

	// src is the generator state after drawing the first `draws` keys and
	// before the auxSeed draw — the resume point for stream extension.
	src     rng.Source
	sorted  []uint64
	auxSeed uint64
	// reused reports how many keys the last update retained (span attr).
	reused int

	tail    []uint64 // newly drawn keys awaiting merge
	staged  int      // target draw count of a staged, uncommitted extension
	scratch []uint64 // radix-sort ping-pong buffer
}

// update makes the plan current for (seed, span, draws): afterwards
// p.sorted holds the sorted key multiset fillUnbiasedSweep would have
// produced and p.auxSeed its tie-break seed.
func (p *UnbiasedPlan) update(seed uint64, span uint64, draws int) {
	switch {
	case p.valid && seed == p.seed && span == p.span && draws == p.draws:
		p.reused = draws
		return
	case p.valid && seed == p.seed && span == p.span && draws > p.draws:
		p.extend(draws)
		return
	}
	p.regenerate(seed, span, draws)
}

// regenerate rebuilds the full schedule from a fresh stream.
func (p *UnbiasedPlan) regenerate(seed, span uint64, draws int) {
	p.seed, p.span, p.draws = seed, span, draws
	p.reused = 0
	p.valid = true
	if cap(p.sorted) < draws {
		p.sorted = make([]uint64, draws)
	}
	p.sorted = p.sorted[:draws]
	src := rng.New(seed)
	if draws > 0 && span > 0 {
		for i := range p.sorted {
			p.sorted[i] = src.Uint64n(span)
		}
	}
	p.src = *src
	aux := *src
	p.auxSeed = aux.Uint64()
	if cap(p.scratch) < draws {
		p.scratch = make([]uint64, draws)
	}
	radixSortUint64(p.sorted, p.scratch[:draws])
}

// extend continues the retained key stream for draws-p.draws new keys and
// merges them into the sorted schedule in place.
func (p *UnbiasedPlan) extend(draws int) {
	p.stageExtend(draws)
	p.commitExtend()
}

// stageExtend generates and sorts the new keys that grow the schedule to
// draws, returning them WITHOUT merging into p.sorted: between stage and
// commit, callers can compute how retained sorted ranks will shift (a
// retained key's rank grows by the number of staged keys strictly below it
// — staged duplicates of a retained value land after it). The generator
// state and auxSeed advance here; commitExtend performs the merge. The
// returned slice aliases plan scratch and is valid until the next stage.
func (p *UnbiasedPlan) stageExtend(draws int) []uint64 {
	k := draws - p.draws
	p.reused = p.draws
	p.staged = draws
	if cap(p.tail) < k {
		p.tail = make([]uint64, k)
	}
	tail := p.tail[:k]
	src := p.src
	for i := range tail {
		tail[i] = src.Uint64n(p.span)
	}
	p.src = src
	aux := src
	p.auxSeed = aux.Uint64()
	slices.Sort(tail)
	return tail
}

// commitExtend merges the staged tail into the sorted schedule in place.
func (p *UnbiasedPlan) commitExtend() {
	draws := p.staged
	n := p.draws
	k := draws - n
	tail := p.tail[:k]
	if cap(p.sorted) < draws {
		grown := make([]uint64, draws, draws+draws/2)
		copy(grown, p.sorted[:n])
		p.sorted = grown
	} else {
		p.sorted = p.sorted[:draws]
	}
	// Backward two-way merge: safe in place because writes trail reads.
	// Retained keys move only when strictly greater, so equal staged keys
	// land after every retained duplicate — the tie order rank shifts are
	// computed against.
	i, j, w := n-1, k-1, draws-1
	for j >= 0 {
		if i >= 0 && p.sorted[i] > tail[j] {
			p.sorted[w] = p.sorted[i]
			i--
		} else {
			p.sorted[w] = tail[j]
			j--
		}
		w--
	}
	p.draws = draws
}

// radixSortUint64 sorts a ascending with an LSD byte-radix counting sort,
// ping-ponging through scratch (len(scratch) must equal len(a)). Passes
// whose byte is constant across the slice are skipped, so keys bounded by a
// small span (the common case: spans are observation windows in
// milliseconds) cost only the low passes.
func radixSortUint64(a, scratch []uint64) {
	if len(a) < 128 {
		slices.Sort(a)
		return
	}
	src, dst := a, scratch
	swapped := false
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [256]int
		for _, v := range src {
			counts[(v>>shift)&0xff]++
		}
		if counts[src[0]>>shift&0xff] == len(src) {
			continue // all keys share this byte
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := counts[b]
			counts[b] = pos
			pos += c
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(a, src)
	}
}
