package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCurveJSONRoundTrip(t *testing.T) {
	records := confoundedRecords(71)
	e := testEstimator(t, nil)
	orig, err := e.Estimate(records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCurveJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReferenceMS != orig.ReferenceMS || got.BiasedN != orig.BiasedN || got.UnbiasedN != orig.UnbiasedN {
		t.Fatal("metadata lost")
	}
	if len(got.NLP) != len(orig.NLP) {
		t.Fatalf("length %d vs %d", len(got.NLP), len(orig.NLP))
	}
	for i := range orig.NLP {
		if got.NLP[i] != orig.NLP[i] || got.Valid[i] != orig.Valid[i] {
			t.Fatalf("bin %d mismatch", i)
		}
		if math.IsNaN(orig.Raw[i]) != math.IsNaN(got.Raw[i]) {
			t.Fatalf("NaN handling broken at bin %d", i)
		}
		if !math.IsNaN(orig.Raw[i]) && got.Raw[i] != orig.Raw[i] {
			t.Fatalf("raw value lost at bin %d", i)
		}
	}
}

func TestCurveJSONNaNBecomesNull(t *testing.T) {
	c := &Curve{
		BinCenters: []float64{5, 15},
		Biased:     []float64{1, 0},
		Unbiased:   []float64{1, 0},
		Raw:        []float64{1, math.NaN()},
		Smoothed:   []float64{1, 1},
		NLP:        []float64{1, 1},
		Valid:      []bool{true, false},
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "null") {
		t.Fatalf("no null emitted:\n%s", buf.String())
	}
	got, err := ReadCurveJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Raw[1]) {
		t.Fatal("null not restored as NaN")
	}
}

func TestReadCurveJSONRejectsBadInput(t *testing.T) {
	if _, err := ReadCurveJSON(strings.NewReader("{}")); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := ReadCurveJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	ragged := `{"bin_centers":[1,2],"biased":[1],"unbiased":[1,2],"raw":[1,2],"smoothed":[1,2],"nlp":[1,2],"valid":[true,true]}`
	if _, err := ReadCurveJSON(strings.NewReader(ragged)); err == nil {
		t.Fatal("ragged columns accepted")
	}
}
