package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autosens/internal/histogram"
	"autosens/internal/rng"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// StreamingEstimator computes NLP curves over telemetry streams too large
// to hold in memory. It keeps, per time slot, the exact biased histograms
// plus a fixed-size uniform reservoir of records; the unbiased distribution
// is then sampled from the reservoir at Finalize time.
//
// Memory is O(slots × (bins + reservoir)) regardless of stream length. The
// approximation relative to the batch estimator is confined to U: the
// nearest-sample lookup runs over the reservoir (a uniform subsample of the
// slot) instead of every record. With reservoirs of a few hundred records
// per hour slot the curves agree closely (see the equivalence test).
//
// Records may arrive in any order. The estimator is not safe for
// concurrent use.
type StreamingEstimator struct {
	est       *Estimator
	reservoir int
	src       *rng.Source
	slots     map[int]*streamSlot
	total     int
	minT      timeutil.Millis
	maxT      timeutil.Millis
}

// streamSlot is the per-slot sketch.
type streamSlot struct {
	count     int
	fine      *histogram.Histogram
	coarse    *histogram.Histogram
	reservoir []telemetry.Record
}

// NewStreaming wraps an Estimator for streaming use with the given
// per-slot reservoir size.
func NewStreaming(est *Estimator, reservoirSize int) (*StreamingEstimator, error) {
	if est == nil {
		return nil, errors.New("core: nil estimator")
	}
	if reservoirSize < 2 {
		return nil, errors.New("core: reservoir must hold at least 2 records")
	}
	return &StreamingEstimator{
		est:       est,
		reservoir: reservoirSize,
		src:       rng.New(est.opts.Seed ^ 0x5eed),
		slots:     make(map[int]*streamSlot),
	}, nil
}

// Add accumulates one record. Failed records are ignored, mirroring the
// batch estimators.
func (s *StreamingEstimator) Add(r telemetry.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if r.Failed {
		return nil
	}
	slot := int(r.Time / s.est.opts.SlotDuration)
	ss := s.slots[slot]
	if ss == nil {
		ss = &streamSlot{
			fine:   s.est.newHist(),
			coarse: histogram.MustNew(0, s.est.opts.MaxLatencyMS, s.est.opts.AlphaBinWidthMS),
		}
		s.slots[slot] = ss
	}
	if s.total == 0 || r.Time < s.minT {
		s.minT = r.Time
	}
	if s.total == 0 || r.Time > s.maxT {
		s.maxT = r.Time
	}
	s.total++
	ss.count++
	ss.fine.Add(r.LatencyMS)
	ss.coarse.Add(r.LatencyMS)
	// Reservoir sampling (algorithm R) keeps a uniform subsample.
	if len(ss.reservoir) < s.reservoir {
		ss.reservoir = append(ss.reservoir, r)
	} else if j := s.src.Intn(ss.count); j < s.reservoir {
		ss.reservoir[j] = r
	}
	return nil
}

// Count returns the number of records accumulated.
func (s *StreamingEstimator) Count() int { return s.total }

// Slots returns the number of distinct time slots seen.
func (s *StreamingEstimator) Slots() int { return len(s.slots) }

// Finalize computes the time-normalized NLP curve from the accumulated
// sketches. The StreamingEstimator remains usable afterwards (more records
// can be added and Finalize called again).
func (s *StreamingEstimator) Finalize() (*Curve, error) {
	sp := s.est.trace.StartChild("finalize_streaming")
	defer sp.End()
	slots, err := s.prepareSlots(s.est.opts.MinSlotActions)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("slots", len(slots))
	sp.SetAttr("records", s.total)
	return s.est.poolNormalized(sp, slots, s.total)
}

// FinalizePlain computes the pooled (no-α) NLP curve from the sketches,
// the streaming analogue of Estimate. All non-empty slots contribute;
// unbiased draws are still allotted per unit time, matching the batch
// estimator's uniform random-time sampling.
func (s *StreamingEstimator) FinalizePlain() (*Curve, error) {
	sp := s.est.trace.StartChild("finalize_streaming_plain")
	defer sp.End()
	slots, err := s.prepareSlots(1)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("slots", len(slots))
	sp.SetAttr("records", s.total)
	bPool := s.est.newHist()
	uPool := s.est.newHist()
	for _, sd := range slots {
		if err := bPool.AddHistogram(sd.fine); err != nil {
			return nil, err
		}
		if err := uPool.AddHistogram(sd.fineU); err != nil {
			return nil, err
		}
	}
	return s.est.finishCurve(sp, bPool, uPool, s.total, int(uPool.Total()))
}

// prepareSlots materializes slotData for every slot with at least
// minActions records, drawing the unbiased samples from the reservoirs.
func (s *StreamingEstimator) prepareSlots(minActions int) ([]*slotData, error) {
	if s.total == 0 {
		return nil, errors.New("core: no usable records")
	}
	keys := make([]int, 0, len(s.slots))
	for k, ss := range s.slots {
		if ss.count >= minActions {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: no slot reaches %d actions", minActions)
	}
	sort.Ints(keys)

	windowLo, windowHi := s.minT, s.maxT+1
	out := make([]*slotData, 0, len(keys))
	var totalDur timeutil.Millis
	for _, k := range keys {
		lo := maxMillis(timeutil.Millis(k)*s.est.opts.SlotDuration, windowLo)
		hi := minMillis(timeutil.Millis(k+1)*s.est.opts.SlotDuration, windowHi)
		if lo >= hi {
			continue
		}
		totalDur += hi - lo
		out = append(out, &slotData{
			slot:  k,
			count: s.slots[k].count,
			lo:    lo,
			hi:    hi,
		})
	}
	if totalDur == 0 {
		return nil, errors.New("core: degenerate window")
	}
	totalDraws := math.Ceil(float64(s.total) * s.est.opts.UnbiasedPerSample)
	src := rng.New(s.est.opts.Seed)
	for _, sd := range out {
		ss := s.slots[sd.slot]
		sd.fine = ss.fine.Clone()
		sd.coarse = ss.coarse.Clone()
		sd.fineU = s.est.newHist()
		sd.coarseU = histogram.MustNew(0, s.est.opts.MaxLatencyMS, s.est.opts.AlphaBinWidthMS)

		sorted := make([]telemetry.Record, len(ss.reservoir))
		copy(sorted, ss.reservoir)
		telemetry.SortByTime(sorted)
		sampler := newUnbiasedSampler(sorted)
		quota := int(math.Ceil(totalDraws * float64(sd.hi-sd.lo) / float64(totalDur)))
		sampler.fillSweep(sd.lo, sd.hi, quota, src, nil, sd.fineU, sd.coarseU)
	}
	return out, nil
}
