// Package core implements AutoSens itself: the natural-experiment estimator
// of normalized latency preference (NLP) described in Sections 2.2–2.4 of
// the paper.
//
// The estimator compares two latency distributions built from the same
// telemetry:
//
//   - the biased distribution B — the latency of the user actions actually
//     performed, which reflects any tendency of users to act more when the
//     service is fast; and
//   - the unbiased distribution U — an approximation of the latency the
//     service would have delivered at times unrelated to user behaviour,
//     estimated by repeatedly drawing a uniformly random instant in the
//     observation window and adopting the latency sample nearest in time.
//
// The per-bin ratio B/U, smoothed with a Savitzky–Golay filter and rescaled
// to equal 1 at a reference latency, is the normalized latency preference:
// NLP(L) = 0.8 means users are 20% less active at latency L than at the
// reference, all else equal.
//
// Three estimator levels are provided, mirroring the paper's development:
//
//   - BiasedOnly: the raw biased PDF (no exposure correction) — useful only
//     to demonstrate why U is needed;
//   - Estimate: B/U pooled over the whole window (Section 2.2–2.3);
//   - EstimateTimeNormalized: B/U with the time-confounder correction of
//     Section 2.4.1 — per-hour activity factors α computed against several
//     reference slots in turn and averaged.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"autosens/internal/histogram"
	"autosens/internal/obs"
	"autosens/internal/prefcurve"
	"autosens/internal/sgolay"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// Options configures an Estimator. The zero value is not valid; start from
// DefaultOptions.
type Options struct {
	// BinWidthMS is the latency histogram bin width (paper: 10 ms).
	BinWidthMS float64
	// MaxLatencyMS is the upper edge of the last latency bin; slower
	// samples are clamped into it.
	MaxLatencyMS float64
	// ReferenceMS is the latency whose preference is normalized to 1
	// (paper: 300 ms).
	ReferenceMS float64
	// SGWindow and SGDegree configure the Savitzky–Golay smoother
	// (paper: window 101, degree 3).
	SGWindow, SGDegree int
	// UnbiasedPerSample sets how many unbiased draws are taken per
	// biased sample (draws = ceil(n · UnbiasedPerSample)).
	UnbiasedPerSample float64
	// MinUnbiasedCount marks bins with fewer unbiased draws than this as
	// unreliable; they are excluded from the valid mask and interpolated
	// over before smoothing.
	MinUnbiasedCount float64
	// SlotDuration is the time-slot width for α estimation (paper: 1 h).
	SlotDuration timeutil.Millis
	// ReferenceSlots is the number of busiest slots used, in turn, as the
	// normalization reference; the resulting curves are averaged
	// (Section 2.4.1: "we pick multiple references in turn and then
	// average the results").
	ReferenceSlots int
	// MinSlotActions drops slots with fewer actions from the pooled
	// estimate; α cannot be estimated reliably for nearly-empty slots.
	MinSlotActions int
	// AlphaBinWidthMS is the latency bin width used when estimating the
	// time-based activity factor α. Coarser than BinWidthMS because α is
	// averaged across bins anyway (and Figure 8 shows it is flat in
	// latency), so wide bins cut variance without losing information.
	AlphaBinWidthMS float64
	// MinAlphaBinCount requires at least this many actions in a latency
	// bin (in both the slot and the reference slot) before that bin
	// contributes to α.
	MinAlphaBinCount float64
	// Seed drives the unbiased sampling draws.
	Seed uint64
	// Workers bounds the estimator's internal parallelism (per-slot
	// histogram/unbiased fills and the per-reference α curves). 0 means
	// GOMAXPROCS; 1 runs serially. Results are bit-identical at any
	// worker count: every parallel unit derives its randomness by
	// splitting the run's Source with a deterministic key.
	Workers int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		BinWidthMS:        10,
		MaxLatencyMS:      3000,
		ReferenceMS:       300,
		SGWindow:          101,
		SGDegree:          3,
		UnbiasedPerSample: 2,
		MinUnbiasedCount:  5,
		SlotDuration:      timeutil.MillisPerHour,
		ReferenceSlots:    5,
		MinSlotActions:    20,
		AlphaBinWidthMS:   100,
		MinAlphaBinCount:  3,
		Seed:              1,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.BinWidthMS <= 0 {
		return errors.New("core: non-positive bin width")
	}
	if o.MaxLatencyMS <= o.BinWidthMS {
		return errors.New("core: max latency must exceed one bin")
	}
	if o.ReferenceMS < 0 || o.ReferenceMS >= o.MaxLatencyMS {
		return fmt.Errorf("core: reference %v outside [0, %v)", o.ReferenceMS, o.MaxLatencyMS)
	}
	if o.SGWindow <= 0 || o.SGWindow%2 == 0 || o.SGDegree < 0 || o.SGDegree >= o.SGWindow {
		return fmt.Errorf("core: invalid smoother window %d / degree %d", o.SGWindow, o.SGDegree)
	}
	if o.UnbiasedPerSample <= 0 {
		return errors.New("core: non-positive unbiased draw ratio")
	}
	if o.MinUnbiasedCount < 0 {
		return errors.New("core: negative MinUnbiasedCount")
	}
	if o.SlotDuration <= 0 {
		return errors.New("core: non-positive slot duration")
	}
	if o.ReferenceSlots <= 0 {
		return errors.New("core: need at least one reference slot")
	}
	if o.MinSlotActions < 1 {
		return errors.New("core: MinSlotActions must be at least 1")
	}
	if o.AlphaBinWidthMS <= 0 || o.AlphaBinWidthMS >= o.MaxLatencyMS {
		return errors.New("core: invalid alpha bin width")
	}
	if o.MinAlphaBinCount < 0 {
		return errors.New("core: negative MinAlphaBinCount")
	}
	if o.Workers < 0 {
		return errors.New("core: negative Workers")
	}
	return nil
}

// Estimator computes NLP curves from telemetry.
type Estimator struct {
	opts   Options
	filter *sgolay.Filter
	trace  *obs.Span
}

// NewEstimator validates opts and builds the estimator.
func NewEstimator(opts Options) (*Estimator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	f, err := sgolay.New(opts.SGWindow, opts.SGDegree)
	if err != nil {
		return nil, err
	}
	return &Estimator{opts: opts, filter: f}, nil
}

// Options returns the estimator's configuration.
func (e *Estimator) Options() Options { return e.opts }

// SetTrace attaches a parent span under which subsequent Estimate* calls
// record per-stage child spans (histogram build, unbiased sampling, α
// normalization, smoothing, bootstrap). A nil parent — the default —
// disables tracing at zero cost; the estimator must not be shared across
// goroutines while a trace is attached.
func (e *Estimator) SetTrace(parent *obs.Span) { e.trace = parent }

// Curve is an estimated normalized-latency-preference curve plus the
// intermediate distributions it was derived from.
type Curve struct {
	// BinCenters are the latency bin midpoints in milliseconds.
	BinCenters []float64
	// Biased and Unbiased are the fractional masses of B and U per bin.
	Biased, Unbiased []float64
	// Raw is the per-bin B/U ratio before smoothing (NaN where U is
	// empty).
	Raw []float64
	// Smoothed is Raw after hole interpolation and Savitzky–Golay
	// smoothing.
	Smoothed []float64
	// NLP is Smoothed divided by its value at the reference latency.
	NLP []float64
	// Valid marks bins with enough unbiased mass to be trustworthy.
	Valid []bool
	// ReferenceMS is the normalization latency.
	ReferenceMS float64
	// BiasedN and UnbiasedN are the sample counts behind B and U.
	BiasedN, UnbiasedN int
}

// At returns the NLP value at the bin containing ms and whether that bin is
// valid. Latencies outside the histogram range are clamped.
func (c *Curve) At(ms float64) (float64, bool) {
	if len(c.BinCenters) == 0 {
		return 0, false
	}
	if len(c.BinCenters) == 1 {
		// A single bin has no width to infer; everything clamps into it.
		return c.NLP[0], c.Valid[0]
	}
	w := c.BinCenters[1] - c.BinCenters[0]
	i := int((ms - (c.BinCenters[0] - w/2)) / w)
	if i < 0 {
		i = 0
	}
	if i >= len(c.NLP) {
		i = len(c.NLP) - 1
	}
	return c.NLP[i], c.Valid[i]
}

// EffectiveN returns the effective sample size behind the NLP estimate at
// the bin containing ms: the harmonic combination of the biased and
// unbiased counts that landed in that bin. The NLP value is a B/U ratio,
// so its sampling error is governed by the thinner of the two bin counts,
// not the window's total volume — a probe out on the latency tail can sit
// in a window of 100k records and still rest on a few dozen observations.
// Returns 0 when either distribution has no mass at the bin.
func (c *Curve) EffectiveN(ms float64) float64 {
	if len(c.BinCenters) == 0 {
		return 0
	}
	i := 0
	if len(c.BinCenters) > 1 {
		w := c.BinCenters[1] - c.BinCenters[0]
		i = int((ms - (c.BinCenters[0] - w/2)) / w)
		if i < 0 {
			i = 0
		}
		if i >= len(c.BinCenters) {
			i = len(c.BinCenters) - 1
		}
	}
	nB := c.Biased[i] * float64(c.BiasedN)
	nU := c.Unbiased[i] * float64(c.UnbiasedN)
	if nB <= 0 || nU <= 0 {
		return 0
	}
	return 1 / (1/nB + 1/nU)
}

// PrefCurve adapts the estimate into a prefcurve.Curve interpolating
// through the valid bins, for direct comparison against planted ground
// truth.
func (c *Curve) PrefCurve() (prefcurve.Curve, error) {
	var anchors []prefcurve.Anchor
	for i, v := range c.NLP {
		if !c.Valid[i] || v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		anchors = append(anchors, prefcurve.Anchor{Latency: c.BinCenters[i], Value: v})
	}
	if len(anchors) == 0 {
		return nil, errors.New("core: no valid bins to build a curve from")
	}
	return prefcurve.NewPiecewiseLinear(anchors)
}

// ValidRange returns the latency extent [lo, hi] covered by valid bins.
func (c *Curve) ValidRange() (lo, hi float64, ok bool) {
	for i, v := range c.Valid {
		if v {
			if !ok {
				lo = c.BinCenters[i]
				ok = true
			}
			hi = c.BinCenters[i]
		}
	}
	return lo, hi, ok
}

// newHist builds a latency histogram per the options.
func (e *Estimator) newHist() *histogram.Histogram {
	return histogram.MustNew(0, e.opts.MaxLatencyMS, e.opts.BinWidthMS)
}

// finishCurve turns a biased and an unbiased histogram into a Curve:
// ratio, hole interpolation, smoothing, and normalization at the reference.
// Stage spans are recorded under sp (which may be nil).
func (e *Estimator) finishCurve(sp *obs.Span, b, u *histogram.Histogram, biasedN, unbiasedN int) (*Curve, error) {
	raw, err := histogram.Ratio(b, u)
	if err != nil {
		return nil, err
	}
	return e.curveFromRaw(sp, raw, b, u, biasedN, unbiasedN)
}

// curveFromRaw completes a Curve from a precomputed raw ratio series.
func (e *Estimator) curveFromRaw(sp *obs.Span, raw []float64, b, u *histogram.Histogram, biasedN, unbiasedN int) (*Curve, error) {
	bins := b.Bins()
	c := &Curve{
		BinCenters:  make([]float64, bins),
		Raw:         raw,
		Valid:       make([]bool, bins),
		ReferenceMS: e.opts.ReferenceMS,
		BiasedN:     biasedN,
		UnbiasedN:   unbiasedN,
	}
	for i := range c.BinCenters {
		c.BinCenters[i] = b.Center(i)
	}
	var err error
	if c.Biased, err = b.Fractions(); err != nil {
		return nil, err
	}
	if c.Unbiased, err = u.Fractions(); err != nil {
		return nil, err
	}
	for i := 0; i < bins; i++ {
		c.Valid[i] = u.Count(i) >= e.opts.MinUnbiasedCount && !math.IsNaN(raw[i])
	}
	filled := interpolateHoles(raw, c.Valid)
	if filled == nil {
		return nil, errors.New("core: no valid bins in ratio")
	}
	smoothSp := sp.StartChild("savitzky_golay_smooth")
	smoothSp.SetAttr("bins", bins)
	smoothSp.SetAttr("window", e.opts.SGWindow)
	c.Smoothed, err = e.filter.Apply(filled)
	smoothSp.End()
	if err != nil {
		return nil, err
	}
	// Normalize at the reference latency.
	refBin := b.Index(e.opts.ReferenceMS)
	ref := c.Smoothed[refBin]
	if ref <= 0 || math.IsNaN(ref) || math.IsInf(ref, 0) {
		return nil, fmt.Errorf("core: smoothed preference %v at reference latency is unusable", ref)
	}
	c.NLP = make([]float64, bins)
	for i, v := range c.Smoothed {
		c.NLP[i] = v / ref
	}
	return c, nil
}

// interpolateHoles replaces invalid entries with linear interpolation
// between the nearest valid neighbours (constant extrapolation at the
// ends). Returns nil when no entry is valid.
func interpolateHoles(xs []float64, valid []bool) []float64 {
	out := make([]float64, len(xs))
	prev := -1
	any := false
	for i := range xs {
		if valid[i] {
			out[i] = xs[i]
			if prev == -1 {
				// Back-fill the leading hole.
				for j := 0; j < i; j++ {
					out[j] = xs[i]
				}
			} else if prev < i-1 {
				// Linear fill between prev and i.
				for j := prev + 1; j < i; j++ {
					frac := float64(j-prev) / float64(i-prev)
					out[j] = xs[prev]*(1-frac) + xs[i]*frac
				}
			}
			prev = i
			any = true
		}
	}
	if !any {
		return nil
	}
	// Forward-fill the trailing hole.
	for j := prev + 1; j < len(xs); j++ {
		out[j] = xs[prev]
	}
	return out
}

// BiasedOnly returns the biased latency distribution rescaled to 1 at the
// reference latency — the estimate one would get with no exposure
// correction at all. It exists as a baseline to show what B/U fixes.
func (e *Estimator) BiasedOnly(records []telemetry.Record) (*Curve, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("biased_only")
	defer sp.End()
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	sp.SetAttr("records", len(records))
	b := e.newHist()
	for _, r := range records {
		b.Add(r.LatencyMS)
	}
	// Use a flat pseudo-unbiased distribution so the ratio equals B's
	// shape (up to a constant, removed by normalization).
	u := e.newHist()
	for i := 0; i < u.Bins(); i++ {
		u.SetCount(i, math.Max(e.opts.MinUnbiasedCount, 1))
	}
	return e.finishCurve(sp, b, u, len(records), 0)
}

// Estimate computes the NLP curve with the whole-window unbiased
// correction but no time-confounder normalization (Sections 2.2–2.3).
func (e *Estimator) Estimate(records []telemetry.Record) (*Curve, error) {
	defer observeEstimate(time.Now())
	sp := e.trace.StartChild("estimate")
	defer sp.End()
	records = usable(records)
	if len(records) == 0 {
		return nil, errors.New("core: no usable records")
	}
	sp.SetAttr("records", len(records))
	telemetry.SortByTime(records)
	times, lats := columnsOf(records)
	return e.estimateColumns(sp, nil, times, lats, nil)
}

// usable filters out failed records (the paper analyzes successful actions
// only) and returns a copy safe to sort.
func usable(records []telemetry.Record) []telemetry.Record {
	out := make([]telemetry.Record, 0, len(records))
	for _, r := range records {
		if !r.Failed {
			out = append(out, r)
		}
	}
	return out
}
