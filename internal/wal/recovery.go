package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"autosens/internal/telemetry"
)

// segScan is the result of scanning one segment file.
type segScan struct {
	goodBytes int64  // offset after the last intact frame (>= header)
	fileSize  int64  // total bytes read
	records   uint64 // records in intact frames
	lost      uint64 // records in a torn frame with a readable header
	headerOK  bool
	format    telemetry.Format
}

// isSegment reports whether name looks like a WAL segment file.
func isSegment(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal")
}

// segIndex parses the sequence number out of a segment file name.
func segIndex(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "seg-%08d.wal", &i); err != nil {
		return 0, false
	}
	return i, true
}

// recover_ scans every segment in dir, truncating torn tails (and
// removing segments whose header never made it to disk), and returns the
// aggregate report plus the highest segment index seen.
func recover_(fsys FS, dir string) (*Recovery, int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, -1, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	rec := &Recovery{}
	lastSeq := -1
	for _, name := range names {
		if !isSegment(name) {
			continue
		}
		if i, ok := segIndex(name); ok && i > lastSeq {
			lastSeq = i
		}
		scan, err := scanSegment(fsys, dir, name)
		if err != nil {
			return nil, -1, err
		}
		rec.Segments++
		rec.RecordsRecovered += scan.records
		rec.RecordsLost += scan.lost
		if !scan.headerOK {
			// Nothing recoverable: the crash hit before the 9-byte header
			// landed. Remove the file rather than leaving junk.
			rec.TornBytes += uint64(scan.fileSize)
			rec.TruncatedSegments = append(rec.TruncatedSegments, name)
			if err := fsys.Remove(join(dir, name)); err != nil {
				return nil, -1, fmt.Errorf("wal: remove torn segment %s: %w", name, err)
			}
			continue
		}
		if scan.goodBytes < scan.fileSize {
			rec.TornBytes += uint64(scan.fileSize - scan.goodBytes)
			rec.TruncatedSegments = append(rec.TruncatedSegments, name)
			if err := fsys.Truncate(join(dir, name), scan.goodBytes); err != nil {
				return nil, -1, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
		}
	}
	return rec, lastSeq, nil
}

// scanSegment walks one segment's frames, CRC-checking each, and returns
// how far the intact prefix reaches. It never decodes payloads: the frame
// header's record count is enough for the recovery report, and replay
// re-validates records anyway.
func scanSegment(fsys FS, dir, name string) (segScan, error) {
	f, err := fsys.Open(join(dir, name))
	if err != nil {
		return segScan{}, fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	var s segScan
	hdr := make([]byte, segHeaderLen)
	n, err := io.ReadFull(r, hdr)
	s.fileSize = int64(n)
	if err != nil || !bytes.Equal(hdr[:len(segMagic)], segMagic[:]) {
		// Short or bad header: count whatever is there as torn.
		s.fileSize += drain(r)
		return s, nil
	}
	s.headerOK = true
	s.format = telemetry.Format(hdr[len(segMagic)])
	s.goodBytes = int64(segHeaderLen)

	frame := make([]byte, frameHdrLen)
	var payload []byte
	for {
		n, err := io.ReadFull(r, frame)
		s.fileSize += int64(n)
		if err == io.EOF {
			return s, nil // clean end
		}
		if err != nil {
			s.fileSize += drain(r)
			return s, nil // torn mid-header: no record count to report
		}
		plen := binary.LittleEndian.Uint32(frame[0:4])
		count := binary.LittleEndian.Uint32(frame[4:8])
		sum := binary.LittleEndian.Uint32(frame[8:12])
		if plen > maxFramePayload {
			// Garbage length: the header itself is corrupt, so its count
			// cannot be trusted either.
			s.fileSize += drain(r)
			return s, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		n, err = io.ReadFull(r, payload)
		s.fileSize += int64(n)
		if err != nil {
			s.lost += uint64(count)
			s.fileSize += drain(r)
			return s, nil // torn mid-payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			s.lost += uint64(count)
			s.fileSize += drain(r)
			return s, nil // corrupt payload
		}
		s.records += uint64(count)
		s.goodBytes += int64(frameHdrLen) + int64(plen)
	}
}

// drain counts the remaining bytes in r without keeping them.
func drain(r io.Reader) int64 {
	n, _ := io.Copy(io.Discard, r)
	return n
}

// Replay streams every record in dir's intact frames, in append order,
// through fn. Torn tails (when dir has not been through Open's truncating
// scan) are skipped, never surfaced as errors; a decode error inside a
// CRC-valid frame is real corruption and is returned. Safe to run on a
// live WAL directory: segments are append-only and frames atomic.
func Replay(fsys FS, dir string, fn func(telemetry.Record) error) error {
	if fsys == nil {
		fsys = OSFS()
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	for _, name := range names {
		if !isSegment(name) {
			continue
		}
		if err := replaySegment(fsys, dir, name, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReplaySegment streams every record in one segment's intact frames
// through fn, with the same torn-tail tolerance as Replay. The store
// compactor folds sealed segments one at a time so it can checkpoint
// per segment; everything else should use Replay.
func ReplaySegment(fsys FS, dir, name string, fn func(telemetry.Record) error) error {
	if fsys == nil {
		fsys = OSFS()
	}
	return replaySegment(fsys, dir, name, fn)
}

// replaySegment decodes the intact frames of one segment.
func replaySegment(fsys FS, dir, name string, fn func(telemetry.Record) error) error {
	f, err := fsys.Open(join(dir, name))
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil || !bytes.Equal(hdr[:len(segMagic)], segMagic[:]) {
		return nil // torn/empty header: nothing to replay
	}
	format := telemetry.Format(hdr[len(segMagic)])

	frame := make([]byte, frameHdrLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil // clean EOF or torn tail
		}
		plen := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[8:12])
		if plen > maxFramePayload {
			return nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil
		}
		tr := telemetry.NewReader(bytes.NewReader(payload), format)
		for {
			rec, err := tr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				tr.Close()
				return fmt.Errorf("wal: segment %s: decode intact frame: %w", name, err)
			}
			if err := fn(rec); err != nil {
				tr.Close()
				return err
			}
		}
		tr.Close()
	}
}

// Load replays dir (on the real filesystem) into a slice — the
// convenience entry point for analyzers pointed at a WAL directory.
func Load(dir string) ([]telemetry.Record, error) {
	var out []telemetry.Record
	err := Replay(nil, dir, func(rec telemetry.Record) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}
