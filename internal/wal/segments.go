package wal

// The exported segment-file surface: cluster rebalancing moves segments
// between nodes' WAL directories, so the file-naming scheme that was an
// internal detail of recovery becomes a (minimal) public contract here.

// Segments lists dir's WAL segment files in replay order (ascending
// sequence number; names sort lexically because indices are fixed-width).
// Non-segment files are ignored, as recovery ignores them.
func Segments(fsys FS, dir string) ([]string, error) {
	if fsys == nil {
		fsys = OSFS()
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	segs := names[:0]
	for _, name := range names {
		if isSegment(name) {
			segs = append(segs, name)
		}
	}
	return segs, nil
}

// SealedSegments lists dir's sealed WAL segment files in replay order:
// every segment strictly older than active, which is the name of the
// WAL's current append target (its ActiveSegment). An empty active means
// the WAL is closed and every segment is sealed. This is the single
// definition of "sealed" shared by cluster handoff and the store
// compactor, so neither can ever consume the segment still being
// appended to.
func SealedSegments(fsys FS, dir, active string) ([]string, error) {
	segs, err := Segments(fsys, dir)
	if err != nil {
		return nil, err
	}
	if active == "" {
		return segs, nil
	}
	cut, ok := segIndex(active)
	if !ok {
		return segs, nil
	}
	sealed := segs[:0]
	for _, name := range segs {
		if i, ok := segIndex(name); ok && i < cut {
			sealed = append(sealed, name)
		}
	}
	return sealed, nil
}

// SegmentName returns the file name of segment i ("seg-%08d.wal").
func SegmentName(i int) string { return segName(i) }

// SegmentIndex parses the sequence number out of a segment file name,
// reporting false for names that are not segments.
func SegmentIndex(name string) (int, bool) { return segIndex(name) }
