package wal

import "time"

// DelayFS wraps an FS and adds a fixed latency to every File.Sync — a
// deterministic stand-in for a storage device whose fsync cost dominates
// the write path (a cloud block device syncs in the low milliseconds; a
// local NVMe in this machine's class syncs in the hundreds of
// microseconds). Cluster benchmarks run their WALs through it so the
// per-node durability cost being amortized is the modeled device's, not
// the build machine's page cache: N nodes' writer goroutines sleep their
// sync delays concurrently, which is exactly the overlap a real multi-
// machine cluster gets from N independent disks.
type DelayFS struct {
	Inner FS
	// SyncDelay is added to every Sync call before delegating.
	SyncDelay time.Duration
}

// NewDelayFS wraps inner (nil selects OSFS) with the given Sync latency.
func NewDelayFS(inner FS, syncDelay time.Duration) *DelayFS {
	if inner == nil {
		inner = OSFS()
	}
	return &DelayFS{Inner: inner, SyncDelay: syncDelay}
}

func (d *DelayFS) MkdirAll(dir string) error { return d.Inner.MkdirAll(dir) }

func (d *DelayFS) Create(name string) (File, error) {
	f, err := d.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &delayFile{File: f, delay: d.SyncDelay}, nil
}

func (d *DelayFS) Open(name string) (File, error) { return d.Inner.Open(name) }

func (d *DelayFS) ReadDir(dir string) ([]string, error) { return d.Inner.ReadDir(dir) }

func (d *DelayFS) Truncate(name string, size int64) error { return d.Inner.Truncate(name, size) }

func (d *DelayFS) Remove(name string) error { return d.Inner.Remove(name) }

func (d *DelayFS) Rename(oldname, newname string) error { return d.Inner.Rename(oldname, newname) }

// delayFile delays Sync; reads and writes pass through.
type delayFile struct {
	File
	delay time.Duration
}

func (f *delayFile) Sync() error {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.File.Sync()
}
