package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the WAL touches. It exists so fault-
// injection tests can fail, short-write, or ENOSPC any operation on
// demand; production code uses OSFS. All paths are full paths (the WAL
// joins its directory itself).
type FS interface {
	// MkdirAll creates dir and parents as needed.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname (POSIX rename
	// semantics) — the install step of every write-tmp-then-rename
	// publication the storage layer performs.
	Rename(oldname, newname string) error
}

// File is the per-file surface: sequential reads or writes plus fsync.
type File interface {
	io.ReadWriteCloser
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by the os package.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// join builds a path inside the WAL directory.
func join(dir, name string) string { return filepath.Join(dir, name) }
