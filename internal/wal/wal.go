// Package wal is the collector's durable ingest log: a segmented
// write-ahead log of telemetry record batches with CRC-framed records,
// size/age-based segment rotation, a configurable fsync policy, and crash
// recovery that truncates torn tails and reports exactly what survived.
//
// Durability matters more here than in a generic message log because
// beacons lost to crashes or disk pressure are not missing at random:
// they cluster in overload episodes — exactly the high-latency tail the
// natural-experiment estimator needs — so silent loss biases the inferred
// preference curve. The WAL turns "process died mid-write" into "at most
// the torn tail of the active segment is lost, and the loss is measured".
//
// # On-disk layout
//
// A WAL directory holds numbered segment files seg-00000000.wal,
// seg-00000001.wal, … Each segment is:
//
//	header:  8-byte magic "ASWALv1\n", 1 format byte (telemetry.Format)
//	frames:  repeated [u32le payload len][u32le record count]
//	         [u32le CRC32-C of payload][payload]
//
// A frame's payload is one appended batch in the segment's telemetry
// encoding (JSONL lines or a self-contained TBIN stream). Frames are
// written with a single Write call and validated by CRC on recovery, so
// a frame is atomic: it is either fully readable or it is the torn tail.
//
// # Recovery invariants
//
//   - Open scans every segment and truncates each torn tail, so replay
//     after recovery never sees a partial frame.
//   - A crash loses at most the frames after the last intact frame of the
//     segment being written (with SyncBatch: at most the frame being
//     written when the process died).
//   - Acked data is never silently dropped: the recovery report counts
//     recovered records, lost records (when the torn frame's header
//     survived), and torn bytes, and exports them as autosens_wal_*.
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"autosens/internal/obs"
	"autosens/internal/telemetry"
)

// Segment header: magic then one format byte.
var segMagic = [8]byte{'A', 'S', 'W', 'A', 'L', 'v', '1', '\n'}

const (
	segHeaderLen = len(segMagic) + 1
	frameHdrLen  = 12 // payload len + record count + CRC32-C
	// maxFramePayload is a sanity bound on one frame; a length field above
	// it means the header bytes are garbage (torn or corrupt).
	maxFramePayload = 64 << 20
)

// castagnoli is the CRC32-C table (the polynomial with hardware support
// on amd64/arm64, the same one used by iSCSI and ext4).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy controls when appended frames are fsynced.
type SyncPolicy int

const (
	// SyncBatch fsyncs after every append: an acked batch survives any
	// crash. The slowest and safest policy.
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.SyncEvery: a crash loses
	// at most the last interval's acked batches. The throughput default.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS page cache decides. A crash
	// of the machine (not just the process) can lose buffered frames.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy converts a -fsync flag value: "batch", "off", or a Go
// duration like "250ms" selecting interval syncing at that cadence.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "batch":
		return SyncBatch, 0, nil
	case "off":
		return SyncOff, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: fsync policy %q (want batch, off, or a positive duration)", s)
	}
	return SyncInterval, d, nil
}

// Options parameterizes Open. The zero value of every field except Dir is
// usable: JSONL payloads, 64 MiB segments, per-batch fsync, the real
// filesystem, and a private metrics registry.
type Options struct {
	// Dir is the WAL directory; created if absent. Required.
	Dir string
	// Format encodes frame payloads: telemetry.JSONL (default) or TBIN.
	Format telemetry.Format
	// SegmentMaxBytes rotates the active segment when it would exceed
	// this size. Default 64 MiB.
	SegmentMaxBytes int64
	// SegmentMaxAge rotates the active segment when it has been open this
	// long, bounding how stale a segment's contents can be. Zero disables
	// age rotation.
	SegmentMaxAge time.Duration
	// Sync selects the fsync policy. Default SyncBatch.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence. Default 250ms.
	SyncEvery time.Duration
	// FS overrides the filesystem (fault-injection tests). Default OSFS.
	FS FS
	// Registry exports autosens_wal_* metrics; nil uses a private one.
	Registry *obs.Registry
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Dir == "" {
		return out, fmt.Errorf("wal: Dir is required")
	}
	if out.Format != telemetry.JSONL && out.Format != telemetry.TBIN {
		return out, fmt.Errorf("wal: unsupported payload format %v (want jsonl or tbin)", out.Format)
	}
	if out.SegmentMaxBytes == 0 {
		out.SegmentMaxBytes = 64 << 20
	}
	if out.SegmentMaxBytes < int64(segHeaderLen+frameHdrLen) {
		return out, fmt.Errorf("wal: SegmentMaxBytes %d too small", out.SegmentMaxBytes)
	}
	if out.SegmentMaxAge < 0 {
		return out, fmt.Errorf("wal: negative SegmentMaxAge")
	}
	if out.SyncEvery == 0 {
		out.SyncEvery = 250 * time.Millisecond
	}
	if out.SyncEvery < 0 {
		return out, fmt.Errorf("wal: negative SyncEvery")
	}
	if out.FS == nil {
		out.FS = OSFS()
	}
	if out.Registry == nil {
		out.Registry = obs.NewRegistry()
	}
	return out, nil
}

// walMetrics bundles the registry handles of the append path.
type walMetrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	records      *obs.Counter
	bytes        *obs.Counter
	fsyncs       *obs.Counter
	fsyncErrors  *obs.Counter
	segments     *obs.Counter
	recovered    *obs.Counter
	lost         *obs.Counter
	torn         *obs.Counter
	frameBytes   *obs.Histogram
}

func newWALMetrics(reg *obs.Registry) walMetrics {
	return walMetrics{
		appends:      reg.Counter("autosens_wal_appends_total", "batches appended to the WAL"),
		appendErrors: reg.Counter("autosens_wal_append_errors_total", "appends that failed and forced a segment rotation"),
		records:      reg.Counter("autosens_wal_records_total", "records appended to the WAL"),
		bytes:        reg.Counter("autosens_wal_bytes_total", "frame bytes written, headers included"),
		fsyncs:       reg.Counter("autosens_wal_fsyncs_total", "fsync calls issued"),
		fsyncErrors:  reg.Counter("autosens_wal_fsync_errors_total", "fsync calls that failed"),
		segments:     reg.Counter("autosens_wal_segments_created_total", "segment files created"),
		recovered:    reg.Counter("autosens_wal_recovered_records_total", "records found intact by the startup scan"),
		lost:         reg.Counter("autosens_wal_lost_records_total", "records in torn frames whose header survived"),
		torn:         reg.Counter("autosens_wal_torn_bytes_total", "bytes truncated from torn segment tails"),
		frameBytes: reg.Histogram("autosens_wal_frame_bytes",
			"size of appended frames, header included", obs.DefBytesBuckets()),
	}
}

// Recovery reports what the startup scan found: how much of the previous
// incarnation's data survived, and what a crash tore off.
type Recovery struct {
	// Segments scanned (the segments that existed before Open).
	Segments int
	// RecordsRecovered counts records in intact frames.
	RecordsRecovered uint64
	// RecordsLost counts records in torn frames whose 12-byte frame
	// header was still readable; tails torn before the header contribute
	// only to TornBytes.
	RecordsLost uint64
	// TornBytes is the total size of the truncated torn tails.
	TornBytes uint64
	// TruncatedSegments names segments that had a torn tail removed
	// (including unreadable segments that were deleted outright).
	TruncatedSegments []string
	// ActiveSegment is the fresh segment new appends go to.
	ActiveSegment string
}

// WAL is a segmented write-ahead log of telemetry batches. Safe for
// concurrent use; appends are serialized.
type WAL struct {
	opts Options
	m    walMetrics

	mu     sync.Mutex
	f      File
	name   string // active segment file name
	size   int64
	opened time.Time
	seq    int
	broken bool // active segment took a write error; rotate before reuse
	closed bool

	scratch []byte       // frame assembly buffer
	tbinBuf bytes.Buffer // TBIN payload scratch

	activeBytes atomic.Int64
	dirty       atomic.Bool // frames written since the last fsync

	stopSync chan struct{}
	syncWG   sync.WaitGroup
}

// Open scans dir, truncates any torn tails, opens a fresh active segment,
// and returns the WAL with its recovery report. Previously written
// segments are never appended to again: recovered segments are immutable,
// which is what makes the truncate-once recovery sound.
func Open(opts Options) (*WAL, *Recovery, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := o.FS.MkdirAll(o.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", o.Dir, err)
	}
	w := &WAL{opts: o, m: newWALMetrics(o.Registry), stopSync: make(chan struct{})}
	o.Registry.GaugeFunc("autosens_wal_active_segment_bytes",
		"bytes in the segment currently being appended to",
		func() float64 { return float64(w.activeBytes.Load()) })

	rec, lastSeq, err := recover_(o.FS, o.Dir)
	if err != nil {
		return nil, nil, err
	}
	w.seq = lastSeq + 1
	w.m.recovered.Add(rec.RecordsRecovered)
	w.m.lost.Add(rec.RecordsLost)
	w.m.torn.Add(rec.TornBytes)

	w.mu.Lock()
	err = w.openSegmentLocked()
	w.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	rec.ActiveSegment = w.name

	if o.Sync == SyncInterval {
		w.syncWG.Add(1)
		go w.syncLoop()
	}
	return w, rec, nil
}

// syncLoop is the SyncInterval background syncer.
func (w *WAL) syncLoop() {
	defer w.syncWG.Done()
	ticker := time.NewTicker(w.opts.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if w.dirty.Swap(false) {
				_ = w.Sync() // failure is counted in fsync_errors
			}
		case <-w.stopSync:
			return
		}
	}
}

// segName formats the file name of segment i.
func segName(i int) string { return fmt.Sprintf("seg-%08d.wal", i) }

// openSegmentLocked rotates to a fresh segment: syncs and closes the
// active one, then creates the next in sequence and writes its header.
func (w *WAL) openSegmentLocked() error {
	if w.f != nil {
		w.syncLocked() // best effort; failure counted in fsync_errors
		_ = w.f.Close()
		w.f = nil
	}
	name := segName(w.seq)
	f, err := w.opts.FS.Create(join(w.opts.Dir, name))
	if err != nil {
		w.broken = true
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	hdr := append(append(make([]byte, 0, segHeaderLen), segMagic[:]...), byte(w.opts.Format))
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		w.broken = true
		return fmt.Errorf("wal: write segment header %s: %w", name, err)
	}
	w.seq++
	w.f = f
	w.name = name
	w.size = int64(segHeaderLen)
	w.opened = time.Now()
	w.broken = false
	w.activeBytes.Store(w.size)
	w.m.segments.Inc()
	return nil
}

// syncLocked fsyncs the active segment if the policy ever syncs.
func (w *WAL) syncLocked() {
	if w.f == nil || w.opts.Sync == SyncOff {
		return
	}
	w.m.fsyncs.Inc()
	if err := w.f.Sync(); err != nil {
		w.m.fsyncErrors.Inc()
	}
}

// Append encodes batch as one frame and writes it to the active segment,
// rotating first if the segment is full or old, and fsyncing per the
// policy. On error the active segment is abandoned (the torn frame is
// removed by the next recovery scan) and the next append rotates to a
// fresh segment, so a failed append never corrupts later ones. The
// records are validated; an invalid record fails the whole batch before
// any bytes are written.
func (w *WAL) Append(batch []telemetry.Record) error {
	if len(batch) == 0 {
		return nil
	}
	for i := range batch {
		if err := batch[i].Validate(); err != nil {
			return err
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	frame, err := w.encodeFrameLocked(batch)
	if err != nil {
		return err
	}
	if w.broken || w.f == nil ||
		(w.size > int64(segHeaderLen) && w.size+int64(len(frame)) > w.opts.SegmentMaxBytes) ||
		(w.opts.SegmentMaxAge > 0 && w.size > int64(segHeaderLen) && time.Since(w.opened) > w.opts.SegmentMaxAge) {
		if err := w.openSegmentLocked(); err != nil {
			w.m.appendErrors.Inc()
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		// The segment now ends in a torn frame. Abandon it: close the
		// file and force rotation, so nothing valid ever follows the
		// tear and recovery's truncate-at-first-bad-frame scan is exact.
		_ = w.f.Close()
		w.f = nil
		w.broken = true
		w.m.appendErrors.Inc()
		return fmt.Errorf("wal: append to %s: %w", w.name, err)
	}
	w.size += int64(len(frame))
	w.activeBytes.Store(w.size)

	switch w.opts.Sync {
	case SyncBatch:
		w.m.fsyncs.Inc()
		if err := w.f.Sync(); err != nil {
			w.m.fsyncErrors.Inc()
			// Durability of this frame is unknown; abandon the segment
			// like a failed write so the caller's retry lands on a fresh
			// one, and let recovery count what actually reached disk.
			_ = w.f.Close()
			w.f = nil
			w.broken = true
			w.m.appendErrors.Inc()
			return fmt.Errorf("wal: fsync %s: %w", w.name, err)
		}
	case SyncInterval:
		w.dirty.Store(true)
	}

	w.m.appends.Inc()
	w.m.records.Add(uint64(len(batch)))
	w.m.bytes.Add(uint64(len(frame)))
	w.m.frameBytes.Observe(float64(len(frame)))
	return nil
}

// encodeFrameLocked builds [header][payload] for batch in w.scratch.
func (w *WAL) encodeFrameLocked(batch []telemetry.Record) ([]byte, error) {
	buf := w.scratch[:0]
	buf = append(buf, make([]byte, frameHdrLen)...)
	switch w.opts.Format {
	case telemetry.TBIN:
		w.tbinBuf.Reset()
		tw := telemetry.NewWriter(&w.tbinBuf, telemetry.TBIN)
		if err := tw.WriteAll(batch); err != nil {
			tw.Close()
			return nil, err
		}
		if err := tw.Close(); err != nil {
			return nil, err
		}
		buf = append(buf, w.tbinBuf.Bytes()...)
	default: // JSONL
		var err error
		for _, rec := range batch {
			if buf, err = telemetry.AppendRecordJSON(buf, rec); err != nil {
				return nil, err
			}
			buf = append(buf, '\n')
		}
	}
	payload := buf[frameHdrLen:]
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("wal: frame payload %d bytes exceeds %d", len(payload), maxFramePayload)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(batch)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, castagnoli))
	w.scratch = buf
	return buf, nil
}

// WriteBatch implements the collector's Sink: a frame is atomic, so a
// failed append persisted nothing that recovery will keep.
func (w *WAL) WriteBatch(batch []telemetry.Record) (int, error) {
	if err := w.Append(batch); err != nil {
		return 0, err
	}
	return len(batch), nil
}

// Sync fsyncs the active segment now, regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.m.fsyncs.Inc()
	if err := w.f.Sync(); err != nil {
		w.m.fsyncErrors.Inc()
		return err
	}
	return nil
}

// Rotate forces a segment rotation now (exposed for tests and tools).
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	return w.openSegmentLocked()
}

// ActiveSegment returns the file name new appends go to.
func (w *WAL) ActiveSegment() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.name
}

// Close syncs and closes the active segment. The WAL must not be used
// after Close.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stopSync)
	w.syncWG.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.opts.Sync != SyncOff {
		w.m.fsyncs.Inc()
		if err = w.f.Sync(); err != nil {
			w.m.fsyncErrors.Inc()
		}
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
