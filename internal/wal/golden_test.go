package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"autosens/internal/core"
	"autosens/internal/owasim"
	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// TestRecoveredCurveIsByteIdentical is the end-to-end durability check the
// WAL exists for: analyzing a crash-recovered log must produce the exact
// same preference curve — byte for byte in its JSON form — as analyzing
// the records that were durably acked. A tolerance here would hide
// systematic loss of the overload tail.
func TestRecoveredCurveIsByteIdentical(t *testing.T) {
	cfg := owasim.DefaultConfig(3*timeutil.MillisPerDay, 40, 40)
	cfg.Seed = 23
	res, err := owasim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := res.Records

	// Ship everything but the final batch intact, then tear the final
	// batch's frame the way a crash mid-write would.
	const tornBatch = 40
	acked := records[:len(records)-tornBatch]
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentMaxBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(acked); off += 500 {
		end := min(off+500, len(acked))
		if err := w.Append(acked[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	last := w.ActiveSegment()
	if err := w.Append(records[len(records)-tornBatch:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, last)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	// Recover, replay, estimate.
	w2, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.RecordsLost != tornBatch {
		t.Fatalf("recovery lost %d records, want the torn batch of %d", rec.RecordsLost, tornBatch)
	}
	recovered, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(acked) {
		t.Fatalf("recovered %d records, want %d", len(recovered), len(acked))
	}

	curveJSON := func(recs []telemetry.Record) []byte {
		t.Helper()
		opts := core.DefaultOptions()
		opts.MinSlotActions = 10
		est, err := core.NewEstimator(opts)
		if err != nil {
			t.Fatal(err)
		}
		slice := telemetry.ByAction(telemetry.Successful(recs), telemetry.SelectMail)
		curve, err := est.EstimateTimeNormalized(slice)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := curve.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	got := curveJSON(recovered)
	want := curveJSON(acked)
	if !bytes.Equal(got, want) {
		t.Fatalf("curve from the recovered WAL differs from the curve over acked records:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
}
