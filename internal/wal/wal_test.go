package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"autosens/internal/telemetry"
	"autosens/internal/timeutil"
)

// putFrameHeader fills a frame header for a hand-built payload.
func putFrameHeader(frame, payload []byte) {
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], 1)
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload, castagnoli))
}

func walRecord(i int) telemetry.Record {
	return telemetry.Record{
		Time:      timeutil.Millis(i * 100),
		Action:    telemetry.SelectMail,
		LatencyMS: 300 + float64(i),
		UserID:    uint64(i%10 + 1),
		UserType:  telemetry.Business,
	}
}

func walBatch(start, n int) []telemetry.Record {
	batch := make([]telemetry.Record, n)
	for i := range batch {
		batch[i] = walRecord(start + i)
	}
	return batch
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		every  time.Duration
		ok     bool
	}{
		{"batch", SyncBatch, 0, true},
		{"off", SyncOff, 0, true},
		{"250ms", SyncInterval, 250 * time.Millisecond, true},
		{"2s", SyncInterval, 2 * time.Second, true},
		{"", 0, 0, false},
		{"always", 0, 0, false},
		{"-5ms", 0, 0, false},
		{"0s", 0, 0, false},
	}
	for _, tc := range cases {
		p, every, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && (p != tc.policy || every != tc.every) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, p, every)
		}
	}
}

func TestOpenValidatesOptions(t *testing.T) {
	cases := []Options{
		{},                                      // missing Dir
		{Dir: "x", Format: telemetry.CSV},       // CSV has no framed payload encoding
		{Dir: "x", SegmentMaxBytes: 4},          // smaller than one header+frame
		{Dir: "x", SegmentMaxAge: -time.Second}, // negative age
		{Dir: "x", Sync: SyncInterval, SyncEvery: -1}, // negative interval
	}
	for i, opts := range cases {
		if opts.Dir == "x" {
			opts.Dir = t.TempDir()
		}
		if _, _, err := Open(opts); err == nil {
			t.Fatalf("case %d: nonsense options accepted: %+v", i, opts)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, format := range []telemetry.Format{telemetry.JSONL, telemetry.TBIN} {
		t.Run(format.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, rec, err := Open(Options{Dir: dir, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			if rec.Segments != 0 || rec.RecordsRecovered != 0 {
				t.Fatalf("fresh dir recovery %+v", rec)
			}
			var want []telemetry.Record
			for b := 0; b < 5; b++ {
				batch := walBatch(b*20, 20)
				if err := w.Append(batch); err != nil {
					t.Fatal(err)
				}
				want = append(want, batch...)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			got, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d mismatch: %+v != %+v", i, got[i], want[i])
				}
			}

			// Reopen: the scan must count every record as recovered, lose
			// nothing, and hand out a fresh active segment.
			w2, rec2, err := Open(Options{Dir: dir, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if rec2.RecordsRecovered != uint64(len(want)) || rec2.RecordsLost != 0 || rec2.TornBytes != 0 {
				t.Fatalf("recovery %+v, want %d recovered and nothing lost", rec2, len(want))
			}
			if len(rec2.TruncatedSegments) != 0 {
				t.Fatalf("clean log reported truncations: %v", rec2.TruncatedSegments)
			}
			if rec2.ActiveSegment == "" || rec2.ActiveSegment == segName(0) {
				t.Fatalf("active segment %q should be fresh", rec2.ActiveSegment)
			}
		})
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var want []telemetry.Record
	for b := 0; b < 30; b++ {
		batch := walBatch(b*5, 5)
		if err := w.Append(batch); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := OSFS().ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", names)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d out of order after rotation", i)
		}
	}
}

func TestRotateForcesNewSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	first := w.ActiveSegment()
	if err := w.Append(walBatch(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.ActiveSegment() == first {
		t.Fatal("Rotate did not switch segments")
	}
	if err := w.Append(walBatch(3, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
}

// tornVariant describes one way a crash can mangle the last segment.
type tornVariant struct {
	name string
	// mangle edits the raw bytes of the last segment file.
	mangle func([]byte) []byte
	// recovered is how many records must survive the scan.
	recovered uint64
	// lost is how many of the torn batch's records the report must count
	// as lost (only when the frame header survived intact).
	lost uint64
}

func TestRecoveryTruncatesTornTails(t *testing.T) {
	const batchSize = 10
	variants := []tornVariant{
		{name: "torn mid-payload", mangle: func(b []byte) []byte {
			return b[:len(b)-7] // drop the payload's tail, keep the header
		}, recovered: batchSize, lost: batchSize},
		{name: "torn mid-header", mangle: func(b []byte) []byte {
			// Find the last frame's start and keep 5 of its 12 header bytes.
			return b[:lastFrameOffset(b)+5]
		}, recovered: batchSize},
		{name: "corrupt payload", mangle: func(b []byte) []byte {
			b[len(b)-3] ^= 0xff // CRC mismatch
			return b
		}, recovered: batchSize, lost: batchSize},
		{name: "garbage appended", mangle: func(b []byte) []byte {
			// Both frames stay intact; only the trailing junk is torn off.
			return append(b, "not a frame"...)
		}, recovered: 2 * batchSize},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			dir := t.TempDir()
			w, _, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(walBatch(0, batchSize)); err != nil {
				t.Fatal(err)
			}
			if err := w.Append(walBatch(batchSize, batchSize)); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			intact := walBatch(0, int(v.recovered))

			seg := filepath.Join(dir, segName(0))
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, v.mangle(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}

			w2, rec, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if rec.RecordsRecovered != v.recovered {
				t.Fatalf("recovered %d records, want %d", rec.RecordsRecovered, v.recovered)
			}
			if rec.RecordsLost != v.lost {
				t.Fatalf("lost %d records, want %d", rec.RecordsLost, v.lost)
			}
			if rec.TornBytes == 0 {
				t.Fatal("torn tail not counted")
			}
			if len(rec.TruncatedSegments) != 1 || rec.TruncatedSegments[0] != segName(0) {
				t.Fatalf("truncated segments %v", rec.TruncatedSegments)
			}
			got, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(intact) {
				t.Fatalf("replayed %d records after truncation, want %d", len(got), len(intact))
			}
			for i := range got {
				if got[i] != intact[i] {
					t.Fatalf("record %d mismatch after recovery", i)
				}
			}
			// The truncation is idempotent: a second scan finds a clean log.
			w2.Close()
			_, rec2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if rec2.TornBytes != 0 || len(rec2.TruncatedSegments) != 0 {
				t.Fatalf("second recovery still found tears: %+v", rec2)
			}
		})
	}
}

// lastFrameOffset walks the frames of a well-formed segment and returns
// the offset where the last frame starts.
func lastFrameOffset(b []byte) int {
	off := segHeaderLen
	for {
		plen := int(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		next := off + frameHdrLen + plen
		if next >= len(b) {
			return off
		}
		off = next
	}
}

func TestRecoveryRemovesHeaderTornSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash between Create and the header write leaves a runt file.
	runt := filepath.Join(dir, segName(1))
	if err := os.WriteFile(runt, []byte("ASW"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Segments != 2 || rec.RecordsRecovered != 4 || rec.TornBytes != 3 {
		t.Fatalf("recovery %+v", rec)
	}
	if _, err := os.Stat(runt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("header-torn segment still on disk: %v", err)
	}
	// New appends must not collide with the removed segment's sequence
	// number: the next active segment is numbered past it.
	if w2.ActiveSegment() != segName(2) {
		t.Fatalf("active segment %s, want %s", w2.ActiveSegment(), segName(2))
	}
}

func TestAppendAfterWriteFailureLandsOnFreshSegment(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(0, 8)); err != nil {
		t.Fatal(err)
	}

	ffs.FailWritesAfter(10, nil) // tear the next frame a few bytes in
	if err := w.Append(walBatch(8, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append error = %v, want injected fault", err)
	}
	if got, _ := w.WriteBatch(walBatch(8, 8)); got != 0 {
		t.Fatalf("WriteBatch on broken segment reported %d written", got)
	}

	ffs.Heal()
	retry := walBatch(8, 8)
	if err := w.Append(retry); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if w.ActiveSegment() == segName(0) {
		t.Fatal("retry landed on the abandoned segment")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The abandoned segment carries a torn frame; recovery must truncate
	// it and keep exactly the 16 acked records.
	_, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecordsRecovered != 16 {
		t.Fatalf("recovered %d records, want 16", rec.RecordsRecovered)
	}
	if len(rec.TruncatedSegments) != 1 {
		t.Fatalf("truncated segments %v, want the abandoned one", rec.TruncatedSegments)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("replayed %d records, want 16", len(got))
	}
}

func TestAppendENOSPC(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(walBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	ffs.ENOSPCAfter(0)
	if err := w.Append(walBatch(4, 4)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append error = %v, want ENOSPC", err)
	}
	// Disk stays full: the rotation attempt inside the next append fails
	// too (the fresh segment's header cannot be written), and the error
	// still surfaces instead of a silent ack.
	if err := w.Append(walBatch(4, 4)); err == nil {
		t.Fatal("append succeeded on a full disk")
	}
	ffs.Heal()
	if err := w.Append(walBatch(4, 4)); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
}

func TestShortWriteIsTruncatedOnRecovery(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(0, 6)); err != nil {
		t.Fatal(err)
	}
	ffs.ShortWriteNext()
	if err := w.Append(walBatch(6, 6)); err == nil {
		t.Fatal("short write not surfaced")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecordsRecovered != 6 || rec.TornBytes == 0 {
		t.Fatalf("recovery %+v, want 6 recovered and a torn tail", rec)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
}

func TestSyncBatchFsyncFailureSurfaces(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, FS: ffs, Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ffs.FailSync(true)
	if err := w.Append(walBatch(0, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append error = %v, want the fsync fault", err)
	}
	ffs.FailSync(false)
	if err := w.Append(walBatch(0, 4)); err != nil {
		t.Fatalf("append after fsync heal: %v", err)
	}
}

func TestSyncIntervalFlushesInBackground(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, FS: ffs, Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, before := ffs.Stats()
	if err := w.Append(walBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, syncs := ffs.Stats(); syncs > before {
			w.Close()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background syncer never fsynced the dirty segment")
}

func TestOpenFailsWhenSegmentCannotBeCreated(t *testing.T) {
	ffs := NewFaultFS(nil)
	ffs.FailCreate(true)
	if _, _, err := Open(Options{Dir: t.TempDir(), FS: ffs}); err == nil {
		t.Fatal("Open succeeded with an uncreatable segment")
	}
}

func TestReplaySurfacesCorruptionInsideValidFrame(t *testing.T) {
	// A CRC-valid frame whose payload does not decode is real corruption
	// (or a writer bug), not a torn tail — Replay must return it.
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the frame with a garbage payload and a MATCHING CRC.
	payload := []byte("definitely not a record\n")
	frame := make([]byte, frameHdrLen+len(payload))
	putFrameHeader(frame, payload)
	copy(frame[frameHdrLen:], payload)
	if err := os.WriteFile(seg, append(raw[:segHeaderLen], frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(nil, dir, func(telemetry.Record) error { return nil }); err == nil {
		t.Fatal("corrupt-but-CRC-valid frame replayed silently")
	}
}

func TestWALEmptyAppendIsNoop(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]telemetry.Record{{LatencyMS: -1}}); err == nil {
		t.Fatal("invalid record accepted")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty WAL replayed %d records", len(got))
	}
}
