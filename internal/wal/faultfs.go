package wal

import (
	"errors"
	"sync"
	"syscall"
)

// ErrInjected is the default error a FaultFS failure returns.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another FS and injects write-path failures on demand: a
// hard error after N bytes, short writes, ENOSPC, and fsync failures.
// It is the fault-injection harness the durability tests (here and in the
// collector) drive; production code never constructs one.
//
// The zero counters mean "no fault armed". All methods are safe for
// concurrent use.
type FaultFS struct {
	Inner FS

	mu sync.Mutex
	// failAfter: once this many more bytes have been written across all
	// files, writes fail with failErr. -1 means disarmed.
	failAfter int64
	failErr   error
	// shortWrite: the next write persists only half its bytes and returns
	// an error, modelling a torn write.
	shortWrite bool
	// failSync makes every subsequent Sync fail.
	failSync bool
	// failCreate makes every subsequent Create fail.
	failCreate bool
	// failRename makes every subsequent Rename fail — the crash point
	// between a compacted block being written and its manifest install.
	failRename bool

	bytesWritten int64
	syncs        int
}

// NewFaultFS wraps inner (OSFS if nil) with all faults disarmed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS()
	}
	return &FaultFS{Inner: inner, failAfter: -1}
}

// FailWritesAfter arms a hard write failure once n more bytes have been
// written; err defaults to ErrInjected. Pass syscall.ENOSPC to model a
// full disk.
func (f *FaultFS) FailWritesAfter(n int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.failAfter = f.bytesWritten + n
	f.failErr = err
}

// ENOSPCAfter is FailWritesAfter with syscall.ENOSPC.
func (f *FaultFS) ENOSPCAfter(n int64) { f.FailWritesAfter(n, syscall.ENOSPC) }

// ShortWriteNext makes the next write persist only half its bytes before
// failing — the torn-write case recovery must truncate.
func (f *FaultFS) ShortWriteNext() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWrite = true
}

// FailSync makes Sync fail until Heal.
func (f *FaultFS) FailSync(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync = on
}

// FailCreate makes Create fail until Heal.
func (f *FaultFS) FailCreate(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failCreate = on
}

// FailRename makes Rename fail until Heal, modelling a crash between
// writing a temp file and installing it over its destination.
func (f *FaultFS) FailRename(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRename = on
}

// Heal disarms every fault.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = -1
	f.shortWrite = false
	f.failSync = false
	f.failCreate = false
	f.failRename = false
}

// Stats returns total bytes written and syncs issued through this FS.
func (f *FaultFS) Stats() (bytesWritten int64, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesWritten, f.syncs
}

func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	fail := f.failCreate
	f.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: inner}, nil
}

func (f *FaultFS) Open(name string) (File, error) { return f.Inner.Open(name) }

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

func (f *FaultFS) Truncate(name string, size int64) error { return f.Inner.Truncate(name, size) }

func (f *FaultFS) Remove(name string) error { return f.Inner.Remove(name) }

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	fail := f.failRename
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.Inner.Rename(oldname, newname)
}

// faultFile applies the parent FS's armed faults to one file's writes.
type faultFile struct {
	fs *FaultFS
	File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.shortWrite {
		ff.fs.shortWrite = false
		half := len(p) / 2
		ff.fs.bytesWritten += int64(half)
		ff.fs.mu.Unlock()
		n, err := ff.File.Write(p[:half])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	if ff.fs.failAfter >= 0 && ff.fs.bytesWritten+int64(len(p)) > ff.fs.failAfter {
		// Persist only what fits under the limit, like a filling disk.
		room := ff.fs.failAfter - ff.fs.bytesWritten
		if room < 0 {
			room = 0
		}
		err := ff.fs.failErr
		ff.fs.bytesWritten += room
		ff.fs.mu.Unlock()
		n, werr := ff.File.Write(p[:room])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	ff.fs.bytesWritten += int64(len(p))
	ff.fs.mu.Unlock()
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	ff.fs.syncs++
	fail := ff.fs.failSync
	ff.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return ff.File.Sync()
}
