package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams collided %d/1000 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	c1 := p1.Split(123)
	c2 := p2.Split(123)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children diverged at %d", i)
		}
	}
}

func TestSplitIndependentKeys(t *testing.T) {
	p := New(9)
	c1 := p.Split(1)
	c2 := p.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children with distinct keys collided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Fatalf("Normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(9)
	const n = 100001
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = s.LogNormal(math.Log(100), 0.5)
	}
	// Median of LogNormal(mu, sigma) is exp(mu) = 100.
	var below int
	for _, v := range vs {
		if v < 100 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(10)
	const n = 100000
	var minV float64 = math.Inf(1)
	exceed := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 2)
		if v < minV {
			minV = v
		}
		if v > 10 {
			exceed++
		}
	}
	if minV < 1 {
		t.Fatalf("Pareto(1,2) produced value below xm: %v", minV)
	}
	// P(X > 10) = (1/10)^2 = 0.01
	frac := float64(exceed) / n
	if math.Abs(frac-0.01) > 0.003 {
		t.Fatalf("Pareto tail fraction = %v, want ~0.01", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(11)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 4*math.Sqrt(mean/n)+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(12)
	if v := s.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := s.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	s := New(13)
	weights := []float64{1, 2, 3, 4}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Fatalf("category %d count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {1, -1}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(15)
	xs := []float64{1, 2, 3, 4, 5}
	sum := 15.0
	s.ShuffleFloat64(xs)
	var got float64
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %v", got)
	}
}

func TestUniformRangeProperty(t *testing.T) {
	s := New(16)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi || math.IsInf(hi-lo, 0) {
			return true
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi || math.Abs(hi-lo) < 1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(17)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		v := s.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	s := New(18)
	for i := 0; i < 100000; i++ {
		if s.Float64Open() <= 0 {
			t.Fatal("Float64Open returned non-positive value")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}
