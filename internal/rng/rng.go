// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the AutoSens
// simulator and estimator.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014) with a 64-bit state and
// a selectable odd stream increment. Two properties matter for this project:
//
//   - Determinism: every stochastic component takes an explicit *Source so
//     experiments are exactly reproducible from a seed.
//   - Splittability: Split derives an independent stream from a parent
//     stream and an integer key, so per-user substreams can be created in
//     any order (or in parallel) without coordination.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive per-goroutine sources with Split.
type Source struct {
	state uint64
	inc   uint64 // always odd
}

const (
	pcgMultiplier = 6364136223846793005
	pcgIncrement  = 1442695040888963407
	// splitMix64 constants, used for seed scrambling and Split.
	smGamma = 0x9e3779b97f4a7c15
	smMul1  = 0xbf58476d1ce4e5b9
	smMul2  = 0x94d049bb133111eb
)

// splitMix64 scrambles x into a well-distributed 64-bit value.
func splitMix64(x uint64) uint64 {
	x += smGamma
	x = (x ^ (x >> 30)) * smMul1
	x = (x ^ (x >> 27)) * smMul2
	return x ^ (x >> 31)
}

// Mix64 scrambles x into a well-distributed 64-bit value (splitMix64). It
// is the same hash the generator uses internally for seed scrambling and
// Split; exported so batch samplers can derive per-item randomness from a
// seed and an item index without materializing a Source per item.
func Mix64(x uint64) uint64 { return splitMix64(x) }

// New returns a Source seeded from seed. Distinct seeds give independent
// streams; the same seed always yields the same sequence.
func New(seed uint64) *Source {
	return NewStream(seed, 0)
}

// NewStream returns a Source on an explicit stream. Sources with the same
// seed but different streams produce independent sequences.
func NewStream(seed, stream uint64) *Source {
	s := &Source{
		state: 0,
		inc:   (splitMix64(stream) << 1) | 1,
	}
	s.state = s.state*pcgMultiplier + s.inc
	s.state += splitMix64(seed)
	s.state = s.state*pcgMultiplier + s.inc
	return s
}

// Split derives a new independent Source from s and key. Splitting with the
// same key twice yields identical child streams; distinct keys yield
// independent streams. The parent stream is advanced once.
func (s *Source) Split(key uint64) *Source {
	return NewStream(s.Uint64()^splitMix64(key), splitMix64(key^smGamma))
}

// next32 advances the state and returns 32 output bits (PCG-XSH-RR).
func (s *Source) next32() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next32() }

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	hi := uint64(s.next32())
	lo := uint64(s.next32())
	return hi<<32 | lo
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection is used to avoid modulo
// bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling on the top bits: unbiased for all n.
	threshold := -n % n
	for {
		v := s.Uint64()
		// 128-bit multiply high via math/bits-free decomposition is
		// overkill here; use rejection on v mod n with threshold.
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1): never exactly zero, which
// makes it safe as an argument to math.Log.
func (s *Source) Float64Open() float64 {
	for {
		v := s.Float64()
		if v > 0 {
			return v
		}
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(s.Float64Open()) / rate
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns exp(Normal(mu, sigma)): log-normally distributed with
// log-mean mu and log-stddev sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) distributed value: xm * U^(-1/alpha).
// It panics if xm <= 0 or alpha <= 0.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm * math.Pow(s.Float64Open(), -1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean. For small
// means it uses Knuth's product method; for large means a normal
// approximation with continuity correction (adequate for workload synthesis).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := s.Normal(mean, math.Sqrt(mean)) + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Categorical returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if weights is empty, any weight is
// negative, or all weights are zero.
func (s *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with zero total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle performs an in-place Fisher–Yates shuffle of n elements using the
// provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// ShuffleFloat64 shuffles xs in place.
func (s *Source) ShuffleFloat64(xs []float64) {
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
