package rng_test

// Distribution-level goodness-of-fit checks for the generator, kept in an
// external test package so they can use the stats package (which itself
// depends on rng) without an import cycle.

import (
	"math"
	"sort"
	"testing"

	"autosens/internal/rng"
)

// ksAgainstCDF computes the one-sample Kolmogorov–Smirnov statistic of xs
// against the analytic CDF.
func ksAgainstCDF(xs []float64, cdf func(float64) float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// ksBound returns the ~99.9% critical value for the one-sample KS test.
func ksBound(n int) float64 {
	return 1.95 / math.Sqrt(float64(n))
}

func TestUniformKS(t *testing.T) {
	src := rng.New(101)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
	}
	d := ksAgainstCDF(xs, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	})
	if d > ksBound(n) {
		t.Fatalf("uniform KS statistic %v exceeds bound %v", d, ksBound(n))
	}
}

func TestExpKS(t *testing.T) {
	src := rng.New(102)
	const n, rate = 50000, 2.5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Exp(rate)
	}
	d := ksAgainstCDF(xs, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	})
	if d > ksBound(n) {
		t.Fatalf("exponential KS statistic %v exceeds bound %v", d, ksBound(n))
	}
}

// normCDF is the standard normal CDF via erf.
func normCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

func TestNormalKS(t *testing.T) {
	src := rng.New(103)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	d := ksAgainstCDF(xs, normCDF)
	if d > ksBound(n) {
		t.Fatalf("normal KS statistic %v exceeds bound %v", d, ksBound(n))
	}
}

func TestLogNormalKS(t *testing.T) {
	src := rng.New(104)
	const n = 50000
	mu, sigma := math.Log(300), 0.4
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.LogNormal(mu, sigma)
	}
	d := ksAgainstCDF(xs, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return normCDF((math.Log(x) - mu) / sigma)
	})
	if d > ksBound(n) {
		t.Fatalf("log-normal KS statistic %v exceeds bound %v", d, ksBound(n))
	}
}

func TestParetoKS(t *testing.T) {
	src := rng.New(105)
	const n = 50000
	xm, alpha := 1.0, 2.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Pareto(xm, alpha)
	}
	d := ksAgainstCDF(xs, func(x float64) float64 {
		if x < xm {
			return 0
		}
		return 1 - math.Pow(xm/x, alpha)
	})
	if d > ksBound(n) {
		t.Fatalf("pareto KS statistic %v exceeds bound %v", d, ksBound(n))
	}
}
